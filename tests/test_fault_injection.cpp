// FaultInjector behaviour at each layer: link faults (drop, down,
// corrupt, duplicate, reorder), NIC stalls/truncation, and forced memory
// pressure — plus full pool recovery after an exhaustion window (no
// leaked references).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "fault/chaos.hpp"
#include "fault/injector.hpp"
#include "net/link.hpp"
#include "pktio/ethdev.hpp"
#include "pktio/mbuf.hpp"
#include "sim/event_queue.hpp"

namespace choir::fault {
namespace {

/// Endpoint that releases everything it receives and keeps tallies.
struct CountingSink : net::Endpoint {
  std::uint64_t delivered = 0;
  std::uint64_t bad_fcs = 0;
  std::vector<Ns> times;
  std::vector<std::uint32_t> ids;  ///< wire_len doubles as a frame id
  void deliver(pktio::Mbuf* pkt, Ns wire_time) override {
    ++delivered;
    if (pkt->frame.invalid_fcs) ++bad_fcs;
    times.push_back(wire_time);
    ids.push_back(pkt->frame.wire_len);
    pktio::Mempool::release(pkt);
  }
};

FaultEvent window_event(FaultKind kind, Ns start, Ns duration, double p = 1.0,
                        Ns delay = 0) {
  FaultEvent e;
  e.kind = kind;
  e.start = start;
  e.duration = duration;
  e.probability = p;
  e.delay = delay;
  return e;
}

/// Send `n` frames through `link` at 1 us spacing starting at base+1us.
void send_frames(sim::EventQueue& queue, net::Link& link,
                 pktio::Mempool& pool, int n, Ns base = 0) {
  for (int i = 0; i < n; ++i) {
    const Ns at = base + microseconds(1) * (i + 1);
    queue.schedule_at(at, [&link, &pool, at] {
      pktio::Mbuf* m = pool.alloc();
      ASSERT_NE(m, nullptr);
      m->frame.wire_len = 100;
      link.send(m, at);
    });
  }
}

TEST(FaultInjection, LinkDownWindowDropsEverythingInside) {
  sim::EventQueue queue;
  net::Link link(queue);
  CountingSink sink;
  link.connect(sink);
  pktio::Mempool pool(256);

  // Down for frames 10..19 (window [10us, 20us)).
  FaultPlan plan;
  plan.add(window_event(FaultKind::kLinkDown, microseconds(10),
                        microseconds(10)));
  FaultInjector injector(queue, plan, Rng(7));
  injector.attach_link("link.test", link);
  EXPECT_EQ(injector.attached_points(), 1u);

  send_frames(queue, link, pool, 100);
  queue.run();

  EXPECT_EQ(injector.stats().link_down_drops, 10u);
  EXPECT_EQ(sink.delivered, 90u);
  EXPECT_EQ(pool.available(), pool.capacity());  // dropped frames released
}

TEST(FaultInjection, LinkDropIsProbabilisticAndCounted) {
  sim::EventQueue queue;
  net::Link link(queue);
  CountingSink sink;
  link.connect(sink);
  pktio::Mempool pool(2048);

  FaultPlan plan;
  plan.add(window_event(FaultKind::kLinkDrop, 0, seconds(1), 0.3));
  FaultInjector injector(queue, plan, Rng(7));
  injector.attach_link("link.test", link);

  send_frames(queue, link, pool, 1000);
  queue.run();

  const std::uint64_t dropped = injector.stats().frames_dropped;
  EXPECT_EQ(sink.delivered + dropped, 1000u);
  EXPECT_GT(dropped, 200u);  // p = 0.3 over 1000 frames
  EXPECT_LT(dropped, 400u);
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST(FaultInjection, CorruptSetsFcsDuplicateClonesReorderDelays) {
  sim::EventQueue queue;
  net::Link link(queue);
  CountingSink sink;
  link.connect(sink);
  pktio::Mempool pool(2048);

  FaultPlan plan;
  plan.add(window_event(FaultKind::kLinkCorrupt, 0, milliseconds(1), 1.0));
  // Duplicate delay deliberately off the 1 us send grid so clones land
  // strictly between original arrivals, never tied with one.
  plan.add(window_event(FaultKind::kLinkDuplicate, milliseconds(1),
                        milliseconds(1), 1.0, Ns{2500}));
  plan.add(window_event(FaultKind::kLinkReorder, milliseconds(2),
                        milliseconds(1), 1.0, microseconds(500)));
  FaultInjector injector(queue, plan, Rng(9));
  injector.attach_link("link.test", link);

  // 100 frames in [1us, 100us): all corrupted.
  // 100 frames in [1ms, 1ms+100us): all duplicated.
  // 100 frames in [2ms, 2ms+100us): all held back 500us.
  for (int i = 0; i < 100; ++i) {
    for (const Ns base : {Ns{0}, milliseconds(1), milliseconds(2)}) {
      const Ns at = base + microseconds(1) * (i + 1);
      const auto id = static_cast<std::uint32_t>(100 + i);
      queue.schedule_at(at, [&link, &pool, at, id] {
        pktio::Mbuf* m = pool.alloc();
        ASSERT_NE(m, nullptr);
        m->frame.wire_len = id;
        link.send(m, at);
      });
    }
  }
  queue.run();

  EXPECT_EQ(injector.stats().frames_corrupted, 100u);
  EXPECT_EQ(injector.stats().frames_duplicated, 100u);
  EXPECT_EQ(injector.stats().frames_reordered, 100u);
  EXPECT_EQ(sink.bad_fcs, 100u);
  EXPECT_EQ(sink.delivered, 400u);  // 300 originals + 100 clones
  EXPECT_EQ(pool.available(), pool.capacity());

  // The event queue delivers in time order, so arrival *times* are
  // non-decreasing by construction; the duplicate interleaving shows up
  // as inversions in frame *identity* (clone of frame i arrives between
  // later originals).
  bool ids_monotone = true;
  for (std::size_t i = 1; i < sink.ids.size(); ++i) {
    if (sink.ids[i] < sink.ids[i - 1]) ids_monotone = false;
  }
  EXPECT_FALSE(ids_monotone);

  // Reordered frames really were held back: the final arrival is at
  // least the reorder delay past the last send time.
  ASSERT_FALSE(sink.times.empty());
  EXPECT_GE(*std::max_element(sink.times.begin(), sink.times.end()),
            milliseconds(2) + microseconds(100) + microseconds(500));
}

/// Backend double: accepts everything, produces nothing.
struct NullBackend : pktio::PortBackend {
  std::uint64_t taken = 0;
  std::uint16_t backend_tx(pktio::Mbuf* const* pkts,
                           std::uint16_t n) override {
    for (std::uint16_t i = 0; i < n; ++i) pktio::Mempool::release(pkts[i]);
    taken += n;
    return n;
  }
  std::uint16_t backend_rx(pktio::Mbuf**, std::uint16_t) override {
    return 0;
  }
};

TEST(FaultInjection, NicStallAndTruncationClampBursts) {
  sim::EventQueue queue;
  NullBackend backend;
  pktio::EthDev dev("test", backend);
  pktio::Mempool pool(256);

  FaultPlan plan;
  plan.add(window_event(FaultKind::kNicTxStall, 0, microseconds(10)));
  FaultEvent trunc = window_event(FaultKind::kNicBurstTruncate,
                                  microseconds(10), microseconds(10));
  trunc.burst_cap = 3;
  plan.add(trunc);
  FaultInjector injector(queue, plan, Rng(11));
  injector.attach_port("nic.test", dev);

  auto burst_of = [&pool](pktio::Mbuf** pkts, std::uint16_t n) {
    for (std::uint16_t i = 0; i < n; ++i) {
      pkts[i] = pool.alloc();
      ASSERT_NE(pkts[i], nullptr);
    }
  };

  // Inside the stall window: total rejection, nothing reaches the device.
  pktio::Mbuf* pkts[8];
  burst_of(pkts, 8);
  EXPECT_EQ(dev.tx_burst(pkts, 8), 0);
  EXPECT_EQ(backend.taken, 0u);
  EXPECT_EQ(injector.stats().tx_stalled_bursts, 1u);
  for (auto* p : pkts) pktio::Mempool::release(p);

  // Inside the truncation window: clamped to burst_cap.
  queue.schedule_at(microseconds(12), [&] {
    pktio::Mbuf* again[8];
    burst_of(again, 8);
    EXPECT_EQ(dev.tx_burst(again, 8), 3);
    for (int i = 3; i < 8; ++i) pktio::Mempool::release(again[i]);
  });
  queue.run();
  EXPECT_EQ(backend.taken, 3u);
  EXPECT_EQ(injector.stats().bursts_truncated, 1u);
  EXPECT_EQ(dev.stats().tx_rejected, 8u + 5u);
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST(FaultInjection, MemPressureDeniesDuringWindowPoolFullyRecovers) {
  // S3: drive the pool empty mid-burst via forced pressure, check the
  // drop counters advance, then verify complete recovery — every buffer
  // back in the pool, no leaked references.
  sim::EventQueue queue;
  pktio::Mempool pool(32);

  FaultPlan plan;
  plan.add(window_event(FaultKind::kMemPressure, microseconds(5),
                        microseconds(10)));
  FaultInjector injector(queue, plan, Rng(13));
  injector.attach_pool("pool.test", pool);

  std::vector<pktio::Mbuf*> held;
  // Before the window: allocations succeed.
  queue.schedule_at(microseconds(1), [&] {
    for (int i = 0; i < 8; ++i) {
      pktio::Mbuf* m = pool.alloc();
      ASSERT_NE(m, nullptr);
      held.push_back(m);
    }
  });
  // Mid-burst, inside the window: every allocation is denied even though
  // 24 buffers are free.
  queue.schedule_at(microseconds(8), [&] {
    EXPECT_GT(pool.available(), 0u);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(pool.alloc(), nullptr);
  });
  // After the window: allocation works again immediately.
  queue.schedule_at(microseconds(20), [&] {
    pktio::Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    held.push_back(m);
  });
  queue.run();

  EXPECT_EQ(injector.stats().allocs_denied, 8u);
  EXPECT_EQ(pool.denied_allocs(), 8u);
  EXPECT_EQ(pool.alloc_failures(), 8u);
  EXPECT_EQ(held.size(), 9u);
  EXPECT_EQ(pool.in_use(), 9u);

  for (auto* m : held) pktio::Mempool::release(m);
  EXPECT_EQ(pool.available(), pool.capacity());  // full recovery
  // And the pool allocates its whole capacity again.
  std::vector<pktio::Mbuf*> all;
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    pktio::Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    all.push_back(m);
  }
  EXPECT_EQ(pool.alloc(), nullptr);  // genuinely empty now
  for (auto* m : all) pktio::Mempool::release(m);
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST(FaultInjection, DetachRestoresCleanBehaviour) {
  sim::EventQueue queue;
  net::Link link(queue);
  CountingSink sink;
  link.connect(sink);
  pktio::Mempool pool(64);

  FaultPlan plan;
  plan.add(window_event(FaultKind::kLinkDown, 0, seconds(1)));
  auto injector = std::make_unique<FaultInjector>(queue, plan, Rng(3));
  injector->attach_link("link.test", link);

  send_frames(queue, link, pool, 5);
  queue.run();
  EXPECT_EQ(sink.delivered, 0u);

  injector->detach_all();
  send_frames(queue, link, pool, 5, queue.now());
  queue.run();
  EXPECT_EQ(sink.delivered, 5u);
}

TEST(FaultInjection, EventsOutsideTheirLayerNeverBind) {
  sim::EventQueue queue;
  net::Link link(queue);
  pktio::Mempool pool(16);
  NullBackend backend;
  pktio::EthDev dev("test", backend);

  FaultPlan plan;
  plan.add(window_event(FaultKind::kMemPressure, 0, seconds(1)));
  FaultInjector injector(queue, plan, Rng(5));
  injector.attach_link("link.test", link);  // no link events -> no hook
  injector.attach_port("nic.test", dev);    // no nic events -> no hook
  EXPECT_EQ(injector.attached_points(), 0u);
  injector.attach_pool("pool.test", pool);
  EXPECT_EQ(injector.attached_points(), 1u);
}

}  // namespace
}  // namespace choir::fault
