// FaultPlan parsing, validation, and the shipped chaos schedules.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "fault/chaos.hpp"
#include "fault/fault_plan.hpp"

namespace choir::fault {
namespace {

TEST(FaultPlan, ParsesEveryKindAndRoundTrips) {
  const std::string text =
      "# chaos schedule\n"
      "link_down target=link.gen0 start=1ms duration=2ms\n"
      "link_drop target=* start=0 duration=5s p=0.25\n"
      "link_corrupt target=link.repl0-out start=3us duration=40us p=0.5\n"
      "link_duplicate target=* start=10ms duration=10ms p=0.1 delay=5us\n"
      "link_reorder target=* start=0 duration=1s p=0.02 delay=20us\n"
      "nic_rx_stall target=nic.repl0-in start=12ms duration=300us\n"
      "nic_tx_stall target=* start=14ms duration=250ns\n"
      "nic_burst_truncate target=* start=0 duration=1s burst_cap=4\n"
      "mem_pressure target=pool.gen0 start=20ms duration=1ms p=1.0\n"
      "clock_degrade target=clock.repl1 start=0 duration=2s factor=100\n";
  const FaultPlan plan = FaultPlan::parse(text);
  ASSERT_EQ(plan.size(), 10u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(plan.events()[0].target, "link.gen0");
  EXPECT_EQ(plan.events()[0].start, milliseconds(1));
  EXPECT_EQ(plan.events()[0].duration, milliseconds(2));
  EXPECT_DOUBLE_EQ(plan.events()[1].probability, 0.25);
  EXPECT_EQ(plan.events()[3].delay, microseconds(5));
  EXPECT_EQ(plan.events()[7].burst_cap, 4);
  EXPECT_EQ(layer_of(plan.events()[8].kind), FaultLayer::kMempool);
  EXPECT_DOUBLE_EQ(plan.events()[9].factor, 100.0);
  EXPECT_EQ(layer_of(plan.events()[9].kind), FaultLayer::kClock);

  // to_text() -> parse() is the identity on validated plans.
  const FaultPlan again = FaultPlan::parse(plan.to_text());
  ASSERT_EQ(again.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(again.events()[i].kind, plan.events()[i].kind) << i;
    EXPECT_EQ(again.events()[i].target, plan.events()[i].target) << i;
    EXPECT_EQ(again.events()[i].start, plan.events()[i].start) << i;
    EXPECT_EQ(again.events()[i].duration, plan.events()[i].duration) << i;
    EXPECT_DOUBLE_EQ(again.events()[i].probability,
                     plan.events()[i].probability)
        << i;
    EXPECT_EQ(again.events()[i].delay, plan.events()[i].delay) << i;
    EXPECT_EQ(again.events()[i].burst_cap, plan.events()[i].burst_cap) << i;
    EXPECT_DOUBLE_EQ(again.events()[i].factor, plan.events()[i].factor) << i;
  }
}

TEST(FaultPlan, RejectsMalformedDirectives) {
  // Unknown kind, missing window, junk value, out-of-range probability:
  // all typed FormatErrors, not generic Errors or crashes.
  EXPECT_THROW(FaultPlan::parse("frobnicate target=* start=0 duration=1ms"),
               FormatError);
  EXPECT_THROW(FaultPlan::parse("link_drop target=*"), FormatError);
  EXPECT_THROW(FaultPlan::parse("link_drop target=* start=zap duration=1ms"),
               FormatError);
  EXPECT_THROW(
      FaultPlan::parse("link_drop target=* start=0 duration=1ms p=1.5"),
      FormatError);
  EXPECT_THROW(
      FaultPlan::parse("link_drop target=* start=0 duration=1ms warp=9"),
      FormatError);
}

TEST(FaultPlan, ValidateCatchesBadProgrammaticEvents) {
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kLinkDrop;
  e.start = 0;
  e.duration = milliseconds(1);
  e.probability = 2.0;
  plan.add(e);
  EXPECT_THROW(plan.validate(), FormatError);
}

TEST(FaultPlan, WindowsAndTargets) {
  FaultEvent e;
  e.start = 100;
  e.duration = 50;
  e.target = "link.gen0";
  EXPECT_FALSE(e.active_at(99));
  EXPECT_TRUE(e.active_at(100));
  EXPECT_TRUE(e.active_at(149));
  EXPECT_FALSE(e.active_at(150));
  EXPECT_TRUE(e.matches("link.gen0"));
  EXPECT_FALSE(e.matches("link.gen1"));
  e.target = "*";
  EXPECT_TRUE(e.matches("anything"));

  FaultPlan plan;
  EXPECT_EQ(plan.horizon(), 0);
  plan.add(e);
  EXPECT_EQ(plan.horizon(), 150);
}

TEST(ChaosPlans, ScaleWithIntensityAndValidate) {
  EXPECT_TRUE(chaos_plan(0.0).empty());
  const FaultPlan half = chaos_plan(0.5);
  const FaultPlan full = chaos_plan(1.0);
  EXPECT_FALSE(half.empty());
  half.validate();
  full.validate();

  // Per-frame probabilities scale linearly with intensity.
  double p_half = 0.0, p_full = 0.0;
  for (const FaultEvent& e : half.events()) {
    if (e.kind == FaultKind::kLinkDrop) p_half = e.probability;
  }
  for (const FaultEvent& e : full.events()) {
    if (e.kind == FaultKind::kLinkDrop) p_full = e.probability;
  }
  EXPECT_GT(p_half, 0.0);
  EXPECT_NEAR(p_full, 2.0 * p_half, 1e-12);

  // The same intensity always builds the identical plan (pure function).
  EXPECT_EQ(chaos_plan(0.7).to_text(), chaos_plan(0.7).to_text());
}

}  // namespace
}  // namespace choir::fault
