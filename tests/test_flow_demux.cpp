// demux_trial: the counting-sort split of a trial into per-flow trials.
// Order preservation, empty-flow slots, kNoFlow accounting, and the
// rebase option are each load-bearing for the per-flow κ path.
#include <gtest/gtest.h>

#include <vector>

#include "core/trial.hpp"
#include "flow/flow_demux.hpp"

namespace choir::flow {
namespace {

core::TrialPacket packet(std::uint64_t seq, Ns time) {
  return {core::PacketId{0xABCD, seq}, time};
}

TEST(FlowDemux, SplitsByIdPreservingArrivalOrder) {
  // Interleaved flows 0 and 1 plus one packet of flow 2.
  core::Trial trial({packet(0, 100), packet(1, 110), packet(2, 120),
                     packet(3, 130), packet(4, 140)});
  const std::vector<FlowId> ids = {0, 1, 0, 2, 0};

  const DemuxResult result = demux_trial(trial, ids, /*flow_count=*/3);
  ASSERT_EQ(result.trials.size(), 3u);
  EXPECT_EQ(result.unclassified, 0u);

  ASSERT_EQ(result.trials[0].size(), 3u);
  EXPECT_EQ(result.trials[0][0].id.lo, 0u);
  EXPECT_EQ(result.trials[0][1].id.lo, 2u);
  EXPECT_EQ(result.trials[0][2].id.lo, 4u);
  EXPECT_EQ(result.trials[0][0].time, 100);
  EXPECT_EQ(result.trials[0][2].time, 140);

  ASSERT_EQ(result.trials[1].size(), 1u);
  EXPECT_EQ(result.trials[1][0].id.lo, 1u);
  ASSERT_EQ(result.trials[2].size(), 1u);
  EXPECT_EQ(result.trials[2][0].id.lo, 3u);
}

TEST(FlowDemux, EmptyFlowsYieldEmptyTrials) {
  // Demuxing run B against run A's (larger) id space: ids A saw but B
  // did not must come back as empty trials, not be skipped.
  core::Trial trial({packet(0, 10), packet(1, 20)});
  const std::vector<FlowId> ids = {4, 4};
  const DemuxResult result = demux_trial(trial, ids, /*flow_count=*/6);
  ASSERT_EQ(result.trials.size(), 6u);
  for (std::size_t f = 0; f < 6; ++f) {
    if (f == 4) {
      EXPECT_EQ(result.trials[f].size(), 2u);
    } else {
      EXPECT_TRUE(result.trials[f].empty());
    }
  }
}

TEST(FlowDemux, CountsAndDropsUnclassifiedPackets) {
  core::Trial trial({packet(0, 10), packet(1, 20), packet(2, 30)});
  const std::vector<FlowId> ids = {kNoFlow, 0, kNoFlow};
  const DemuxResult result = demux_trial(trial, ids, /*flow_count=*/1);
  EXPECT_EQ(result.unclassified, 2u);
  ASSERT_EQ(result.trials.size(), 1u);
  ASSERT_EQ(result.trials[0].size(), 1u);
  EXPECT_EQ(result.trials[0][0].id.lo, 1u);
}

TEST(FlowDemux, RebasePutsEachFlowOnItsOwnTimebase) {
  core::Trial trial({packet(0, 1000), packet(1, 1500), packet(2, 1700),
                     packet(3, 2500)});
  const std::vector<FlowId> ids = {0, 1, 0, 1};
  const DemuxResult result =
      demux_trial(trial, ids, /*flow_count=*/2, {.rebase = true});
  ASSERT_EQ(result.trials[0].size(), 2u);
  EXPECT_EQ(result.trials[0].first_time(), 0);
  EXPECT_EQ(result.trials[0][1].time, 700);  // 1700 - 1000
  EXPECT_EQ(result.trials[1].first_time(), 0);
  EXPECT_EQ(result.trials[1][1].time, 1000);  // 2500 - 1500
}

TEST(FlowDemux, IsAPureFunctionOfItsInputs) {
  // Two identical invocations must agree packet for packet — the
  // property the --jobs byte-identity gate leans on.
  std::vector<core::TrialPacket> packets;
  std::vector<FlowId> ids;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    packets.push_back(packet(i, static_cast<Ns>(i) * 100));
    ids.push_back(static_cast<FlowId>(i % 37));
  }
  const core::Trial trial(std::move(packets));
  const DemuxResult x = demux_trial(trial, ids, 37);
  const DemuxResult y = demux_trial(trial, ids, 37);
  ASSERT_EQ(x.trials.size(), y.trials.size());
  for (std::size_t f = 0; f < x.trials.size(); ++f) {
    ASSERT_EQ(x.trials[f].size(), y.trials[f].size());
    for (std::size_t i = 0; i < x.trials[f].size(); ++i) {
      EXPECT_EQ(x.trials[f][i].id, y.trials[f][i].id);
      EXPECT_EQ(x.trials[f][i].time, y.trials[f][i].time);
    }
  }
}

}  // namespace
}  // namespace choir::flow
