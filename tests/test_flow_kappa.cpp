// Per-flow κ and cross-flow aggregation semantics: matched flows run the
// exact Eq. 5 comparison on their own timebase, one-sided flows grade as
// κ = 0.5 (Eq. 5 against an empty trial), and the aggregate's p90/p99
// read the LOW tail of the ascending κ sample (the value 90%/99% of
// flows meet or exceed). Job-count bit-identity is asserted because the
// bench JSON byte gate depends on it.
#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "flow/flow_kappa.hpp"

namespace choir::flow {
namespace {

core::TrialPacket packet(std::uint64_t seq, Ns time) {
  return {core::PacketId{0xF10F, seq}, time};
}

/// Hand-built comparison row with a pinned κ and packet weight.
FlowComparison row(double kappa, std::uint32_t packets_each) {
  FlowComparison fc;
  fc.in_a = fc.in_b = true;
  fc.packets_a = fc.packets_b = packets_each;
  fc.metrics.kappa = kappa;
  return fc;
}

TEST(FlowKappa, IdenticalTrialsScorePerfectEverywhere) {
  std::vector<core::TrialPacket> packets;
  std::vector<FlowId> ids;
  for (std::uint64_t i = 0; i < 300; ++i) {
    packets.push_back(packet(i, static_cast<Ns>(i) * 1000));
    ids.push_back(static_cast<FlowId>(i % 3));
  }
  const core::Trial trial(packets);
  const auto cmp = compare_flows_by_id(trial, ids, trial, ids, 3);
  EXPECT_EQ(cmp.aggregate.flows, 3u);
  EXPECT_EQ(cmp.aggregate.matched, 3u);
  EXPECT_EQ(cmp.aggregate.only_a, 0u);
  EXPECT_EQ(cmp.aggregate.only_b, 0u);
  EXPECT_EQ(cmp.aggregate.worst, 1.0);
  EXPECT_EQ(cmp.aggregate.p50, 1.0);
  EXPECT_EQ(cmp.aggregate.p99, 1.0);
  EXPECT_EQ(cmp.aggregate.weighted_mean, 1.0);
  for (const auto& fc : cmp.flows) {
    EXPECT_TRUE(fc.matched());
    EXPECT_EQ(fc.metrics.kappa, 1.0);
    EXPECT_EQ(fc.packets_a, 100u);
  }
}

TEST(FlowKappa, OneSidedFlowGradesAsHalf) {
  // Flow 1 exists only in A (wholly dropped), flow 2 only in B (wholly
  // extra). Both grade U = 1, O = L = I = 0 → κ = 0.5 and stay in the
  // aggregate with their one-sided packet weight.
  core::Trial a({packet(0, 0), packet(1, 1000), packet(2, 2000)});
  const std::vector<FlowId> ids_a = {0, 1, 1};
  core::Trial b({packet(0, 0), packet(9, 1000)});
  const std::vector<FlowId> ids_b = {0, 2};

  const auto cmp = compare_flows_by_id(a, ids_a, b, ids_b, 3);
  EXPECT_EQ(cmp.aggregate.flows, 3u);
  EXPECT_EQ(cmp.aggregate.matched, 1u);
  EXPECT_EQ(cmp.aggregate.only_a, 1u);
  EXPECT_EQ(cmp.aggregate.only_b, 1u);

  EXPECT_EQ(cmp.flows[0].metrics.kappa, 1.0);
  EXPECT_EQ(cmp.flows[1].metrics.kappa, 0.5);
  EXPECT_EQ(cmp.flows[1].metrics.uniqueness, 1.0);
  EXPECT_EQ(cmp.flows[1].packets_a, 2u);
  EXPECT_EQ(cmp.flows[1].packets_b, 0u);
  EXPECT_EQ(cmp.flows[2].metrics.kappa, 0.5);
  EXPECT_EQ(cmp.aggregate.worst, 0.5);
  // Weighted mean: (1*2 + 0.5*2 + 0.5*1) / 5.
  EXPECT_DOUBLE_EQ(cmp.aggregate.weighted_mean, (2.0 + 1.0 + 0.5) / 5.0);
}

TEST(FlowKappa, AggregatePercentilesReadTheLowTail) {
  // 100 flows at κ = 0.01 .. 1.00: p90 must report the value 90% of
  // flows are at-or-above — the 10th percentile of the ascending
  // sample — and p99 the 1st.
  std::vector<FlowComparison> flows;
  std::vector<double> kappas;
  for (int i = 1; i <= 100; ++i) {
    flows.push_back(row(i / 100.0, 10));
    kappas.push_back(i / 100.0);
  }
  const FlowAggregate agg = aggregate_flows(flows);
  EXPECT_EQ(agg.flows, 100u);
  EXPECT_EQ(agg.worst, 0.01);
  EXPECT_DOUBLE_EQ(agg.p50, stats::percentile_sorted(kappas, 50.0));
  EXPECT_DOUBLE_EQ(agg.p90, stats::percentile_sorted(kappas, 10.0));
  EXPECT_DOUBLE_EQ(agg.p99, stats::percentile_sorted(kappas, 1.0));
  EXPECT_DOUBLE_EQ(agg.p999, stats::p999_low_sorted(kappas));
  EXPECT_LT(agg.p99, agg.p90);  // tail ordering: p99 is the worse value
  EXPECT_LT(agg.p90, agg.p50);
  EXPECT_LE(agg.p999, agg.p99);  // the extreme tail is at least as bad
  EXPECT_LE(agg.worst, agg.p999);
  EXPECT_DOUBLE_EQ(agg.mean, 0.505);
  EXPECT_DOUBLE_EQ(agg.weighted_mean, 0.505);  // uniform weights
}

TEST(FlowKappa, WeightedMeanFollowsPacketCounts) {
  // A heavy perfect flow and a light broken one: the weighted mean must
  // sit near the heavy flow, the plain mean halfway.
  const std::vector<FlowComparison> flows = {row(1.0, 90), row(0.5, 10)};
  const FlowAggregate agg = aggregate_flows(flows);
  EXPECT_DOUBLE_EQ(agg.mean, 0.75);
  EXPECT_DOUBLE_EQ(agg.weighted_mean, (180.0 + 10.0) / 200.0);
  EXPECT_EQ(agg.worst, 0.5);
}

TEST(FlowKappa, RetiredIdsAreSkippedAndEmptySetIsVacuouslyConsistent) {
  FlowComparison retired;  // in neither trial: a retired id slot
  const std::vector<FlowComparison> flows = {retired};
  const FlowAggregate agg = aggregate_flows(flows);
  EXPECT_EQ(agg.flows, 0u);
  EXPECT_EQ(agg.worst, 1.0);
  EXPECT_EQ(agg.p99, 1.0);
  EXPECT_EQ(agg.p999, 1.0);
  EXPECT_EQ(agg.weighted_mean, 1.0);
}

TEST(FlowKappa, JobCountDoesNotChangeASingleBit) {
  // Enough flows to span several kFlowsPerTask chunks, with per-flow
  // jitter so the metrics are non-trivial.
  std::vector<core::TrialPacket> pa, pb;
  std::vector<FlowId> ids;
  constexpr std::size_t kFlows = 3000;
  constexpr std::size_t kPackets = 12000;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    const Ns t = static_cast<Ns>(i) * 500;
    pa.push_back(packet(i, t));
    // B: same packets, timing jittered deterministically per packet.
    pb.push_back(packet(i, t + static_cast<Ns>((i * 37) % 23)));
    ids.push_back(static_cast<FlowId>(i % kFlows));
  }
  const core::Trial a(std::move(pa));
  const core::Trial b(std::move(pb));
  const auto seq = compare_flows_by_id(a, ids, b, ids, kFlows, /*jobs=*/1);
  const auto par = compare_flows_by_id(a, ids, b, ids, kFlows, /*jobs=*/4);

  ASSERT_EQ(seq.flows.size(), par.flows.size());
  for (std::size_t f = 0; f < seq.flows.size(); ++f) {
    EXPECT_EQ(seq.flows[f].metrics.kappa, par.flows[f].metrics.kappa);
    EXPECT_EQ(seq.flows[f].metrics.uniqueness,
              par.flows[f].metrics.uniqueness);
    EXPECT_EQ(seq.flows[f].metrics.ordering, par.flows[f].metrics.ordering);
    EXPECT_EQ(seq.flows[f].metrics.iat, par.flows[f].metrics.iat);
    EXPECT_EQ(seq.flows[f].metrics.latency, par.flows[f].metrics.latency);
  }
  EXPECT_EQ(seq.aggregate.worst, par.aggregate.worst);
  EXPECT_EQ(seq.aggregate.p50, par.aggregate.p50);
  EXPECT_EQ(seq.aggregate.p90, par.aggregate.p90);
  EXPECT_EQ(seq.aggregate.p99, par.aggregate.p99);
  EXPECT_EQ(seq.aggregate.weighted_mean, par.aggregate.weighted_mean);
}

TEST(FlowKappa, CompareByKeyRemapsBIntoAsIdSpace) {
  // Two tables classified the same two keys in opposite arrival order;
  // compare_flows must match them by key, not by raw id.
  FlowKey k0{.src_ip = 1, .dst_ip = 2, .src_port = 10, .dst_port = 20};
  FlowKey k1{.src_ip = 1, .dst_ip = 2, .src_port = 11, .dst_port = 20};
  FlowTable ta, tb;
  ta.classify(k0, 64, 0, 0);  // A: k0 -> 0, k1 -> 1
  ta.classify(k1, 64, 1, 1);
  tb.classify(k1, 64, 0, 0);  // B: k1 -> 0, k0 -> 1
  tb.classify(k0, 64, 1, 1);

  core::Trial a({packet(0, 0), packet(1, 1000)});
  core::Trial b({packet(1, 0), packet(0, 1000)});
  const std::vector<FlowId> ids_a = {0, 1};  // k0 then k1
  const std::vector<FlowId> ids_b = {0, 1};  // k1 then k0

  const auto cmp = compare_flows(a, ta, ids_a, b, tb, ids_b);
  EXPECT_EQ(cmp.aggregate.matched, 2u);
  EXPECT_EQ(cmp.aggregate.only_a, 0u);
  EXPECT_EQ(cmp.aggregate.only_b, 0u);
  EXPECT_EQ(cmp.flows[0].key, k0);
  EXPECT_EQ(cmp.flows[1].key, k1);
  // Each flow is a single identical packet on its own timebase: perfect.
  EXPECT_EQ(cmp.aggregate.worst, 1.0);
}

}  // namespace
}  // namespace choir::flow
