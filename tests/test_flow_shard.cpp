// Flow sharding's determinism contract, in the mold of
// test_parallel_determinism: worker-private shard sets merged in
// submission order, and shards owned concurrently by pool workers, must
// reproduce the sequential classifier exactly — same flows, same
// first-seen order, same counters, same per-packet ids, same per-flow κ.
// The CI TSan job selects these by name (-R FlowShard) to race-check the
// concurrent-shard path.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/task_pool.hpp"
#include "flow/flow_shard.hpp"
#include "flow/flow_table.hpp"
#include "testbed/experiment.hpp"
#include "trace/flow_classify.hpp"

namespace choir::flow {
namespace {

struct Arrival {
  FlowKey key;
  std::uint32_t wire_len;
  Ns time;
};

/// A deterministic arrival stream over `flows` distinct keys, revisiting
/// each several times so counters actually fold.
std::vector<Arrival> arrival_stream(std::uint32_t flows,
                                    std::size_t packets) {
  std::vector<Arrival> stream;
  stream.reserve(packets);
  for (std::size_t i = 0; i < packets; ++i) {
    const auto n = static_cast<std::uint32_t>((i * 7919) % flows);
    Arrival a;
    a.key.src_ip = (10u << 24) | 1u | ((n / 16384u) << 8);
    a.key.dst_ip = (10u << 24) | 4u;
    a.key.src_port = static_cast<std::uint16_t>(7000u + n % 16384u);
    a.key.dst_port = 7001;
    a.wire_len = 64 + n % 32;
    a.time = static_cast<Ns>(i) * 100;
    stream.push_back(a);
  }
  return stream;
}

void expect_matches_sequential(const std::vector<GlobalFlow>& merged,
                               const FlowTable& sequential) {
  ASSERT_EQ(merged.size(), sequential.ids());
  for (std::size_t f = 0; f < merged.size(); ++f) {
    const auto id = static_cast<FlowId>(f);
    EXPECT_EQ(merged[f].key, sequential.key_of(id)) << "flow " << f;
    const auto& got = merged[f].stats;
    const auto& want = sequential.stats_of(id);
    EXPECT_EQ(got.packets, want.packets) << "flow " << f;
    EXPECT_EQ(got.bytes, want.bytes) << "flow " << f;
    EXPECT_EQ(got.first_index, want.first_index) << "flow " << f;
    EXPECT_EQ(got.first_seen, want.first_seen) << "flow " << f;
    EXPECT_EQ(got.last_seen, want.last_seen) << "flow " << f;
  }
}

TEST(FlowShard, MergedWorkerSetsMatchTheSequentialClassifier) {
  // Four workers classify disjoint chunks of one stream into private
  // shard sets (global arrival indices); merging in submission order and
  // enumerating by first arrival must equal one sequential FlowTable.
  const auto stream = arrival_stream(/*flows=*/800, /*packets=*/6000);
  FlowTable sequential;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sequential.classify(stream[i].key, stream[i].wire_len, stream[i].time, i);
  }

  constexpr int kShards = 8;
  constexpr std::size_t kWorkers = 4;
  const std::size_t chunk = (stream.size() + kWorkers - 1) / kWorkers;
  std::vector<FlowShardSet> sets;
  sets.reserve(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) sets.emplace_back(kShards);
  parallel_for_indexed(static_cast<int>(kWorkers), kWorkers,
                       [&](std::size_t w) {
                         FlowShardSet& mine = sets[w];
                         const std::size_t lo = w * chunk;
                         const std::size_t hi =
                             std::min(stream.size(), lo + chunk);
                         for (std::size_t i = lo; i < hi; ++i) {
                           mine.classify(stream[i].key, stream[i].wire_len,
                                         stream[i].time, i);
                         }
                       });

  FlowShardSet merged(kShards);
  for (const auto& set : sets) merged.merge_from(set);
  EXPECT_EQ(merged.size(), sequential.size());
  expect_matches_sequential(merged_flows(merged), sequential);
}

TEST(FlowShard, ConcurrentShardOwnersAreRaceFreeAndDeterministic) {
  // The classify_capture_sharded access pattern distilled: one SHARED
  // shard set, each pool worker scanning the whole stream but touching
  // only the shards it owns. TSan watches this for races; the merged
  // view must still equal the sequential table.
  const auto stream = arrival_stream(/*flows=*/500, /*packets=*/4000);
  FlowTable sequential;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    sequential.classify(stream[i].key, stream[i].wire_len, stream[i].time, i);
  }

  constexpr int kShards = 8;
  FlowShardSet shared(kShards);
  parallel_for_indexed(/*jobs=*/4, kShards, [&](std::size_t s) {
    FlowTable& mine = shared.shard(static_cast<int>(s));
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (shard_of_key(stream[i].key, kShards) != static_cast<int>(s)) {
        continue;
      }
      mine.classify(stream[i].key, stream[i].wire_len, stream[i].time, i);
    }
  });

  EXPECT_EQ(shared.size(), sequential.size());
  expect_matches_sequential(merged_flows(shared), sequential);
}

TEST(FlowShard, ShardCountDoesNotChangeTheMergedView) {
  const auto stream = arrival_stream(/*flows=*/300, /*packets=*/2000);
  std::vector<std::vector<GlobalFlow>> views;
  for (const int shards : {1, 3, 8, 16}) {
    FlowShardSet set(shards);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      set.classify(stream[i].key, stream[i].wire_len, stream[i].time, i);
    }
    views.push_back(merged_flows(set));
  }
  for (std::size_t v = 1; v < views.size(); ++v) {
    ASSERT_EQ(views[v].size(), views[0].size());
    for (std::size_t f = 0; f < views[v].size(); ++f) {
      EXPECT_EQ(views[v][f].key, views[0][f].key);
      EXPECT_EQ(views[v][f].stats.packets, views[0][f].stats.packets);
      EXPECT_EQ(views[v][f].stats.first_index, views[0][f].stats.first_index);
    }
  }
}

TEST(FlowShard, ExperimentFlowEvaluationIsJobCountInvariant) {
  // End to end through the testbed: a flow-enabled experiment's sharded
  // capture classification and per-flow κ comparisons at eval_jobs 4
  // must be bit-identical to the sequential run, and the sharded capture
  // classifier must agree with the sequential reference packet for
  // packet.
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_single();
  cfg.packets = 4000;
  cfg.runs = 3;
  cfg.seed = 17;
  cfg.collect_series = true;
  cfg.keep_captures = true;
  cfg.flow.enabled = true;
  cfg.flow.flows = 256;
  cfg.flow.shards = 8;

  cfg.eval_jobs = 1;
  const auto sequential = testbed::run_experiment(cfg);
  cfg.eval_jobs = 4;
  const auto parallel = testbed::run_experiment(cfg);

  EXPECT_GE(sequential.flow_count, 200u);  // fan-out actually happened
  EXPECT_EQ(sequential.flow_count, parallel.flow_count);
  EXPECT_EQ(sequential.flow_unclassified, parallel.flow_unclassified);
  ASSERT_EQ(sequential.flow_comparisons.size(), 2u);
  ASSERT_EQ(parallel.flow_comparisons.size(), 2u);
  for (std::size_t c = 0; c < sequential.flow_comparisons.size(); ++c) {
    const auto& fs = sequential.flow_comparisons[c];
    const auto& fp = parallel.flow_comparisons[c];
    ASSERT_EQ(fs.flows.size(), fp.flows.size());
    for (std::size_t f = 0; f < fs.flows.size(); ++f) {
      EXPECT_EQ(fs.flows[f].key, fp.flows[f].key);
      EXPECT_EQ(fs.flows[f].packets_a, fp.flows[f].packets_a);
      EXPECT_EQ(fs.flows[f].packets_b, fp.flows[f].packets_b);
      EXPECT_EQ(fs.flows[f].metrics.kappa, fp.flows[f].metrics.kappa);
    }
    EXPECT_EQ(fs.aggregate.worst, fp.aggregate.worst);
    EXPECT_EQ(fs.aggregate.p50, fp.aggregate.p50);
    EXPECT_EQ(fs.aggregate.p90, fp.aggregate.p90);
    EXPECT_EQ(fs.aggregate.p99, fp.aggregate.p99);
    EXPECT_EQ(fs.aggregate.weighted_mean, fp.aggregate.weighted_mean);
  }

  // Sharded vs sequential classification of the same capture bytes.
  ASSERT_FALSE(sequential.captures.empty());
  const auto ref = trace::classify_capture(sequential.captures[0]);
  const auto sharded = trace::classify_capture_sharded(
      sequential.captures[0], cfg.flow.shards, /*jobs=*/4);
  EXPECT_EQ(ref.per_packet, sharded.per_packet);
  EXPECT_EQ(ref.table.size(), sharded.table.size());
  EXPECT_EQ(ref.unclassified, sharded.unclassified);
  for (FlowId id = 0; id < ref.table.ids(); ++id) {
    EXPECT_EQ(ref.table.key_of(id), sharded.table.key_of(id));
    EXPECT_EQ(ref.table.stats_of(id).packets,
              sharded.table.stats_of(id).packets);
  }
}

}  // namespace
}  // namespace choir::flow
