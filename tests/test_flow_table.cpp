// FlowTable adversarial coverage: the open-addressing classifier under
// the conditions that break naive tables — long probe chains from
// colliding keys, erase/re-insert churn exercising tombstone reuse, and
// growth to the 100k-flow scale the bench suite runs at. The dense-id
// contract (n-th distinct key gets id n, erased ids are retired and
// never reused) is what the demux and per-flow κ layers index by, so it
// is asserted throughout.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "flow/flow_key.hpp"
#include "flow/flow_table.hpp"

namespace choir::flow {
namespace {

FlowKey key_n(std::uint32_t n) {
  // Mirrors gen::MultiFlowGenerator's address fan-out: 16384 ports per
  // source address, all distinct tuples.
  FlowKey key;
  key.src_ip = (10u << 24) | 1u | ((n / 16384u) << 8);
  key.dst_ip = (10u << 24) | 4u;
  key.src_port = static_cast<std::uint16_t>(7000u + n % 16384u);
  key.dst_port = 7001;
  return key;
}

/// Keys whose hashes all land on slot 0 of a fresh (64-slot) table: one
/// maximal probe chain.
std::vector<FlowKey> colliding_keys(std::size_t count) {
  std::vector<FlowKey> keys;
  for (std::uint32_t stream = 0; keys.size() < count; ++stream) {
    FlowKey key = key_n(0);
    key.stream = stream;
    if ((hash_of(key) & 63u) == 0u) keys.push_back(key);
  }
  return keys;
}

TEST(FlowTable, AssignsDenseIdsInFirstSeenOrder) {
  FlowTable table;
  EXPECT_EQ(table.lookup(key_n(0)), kNoFlow);  // empty-table probe
  for (std::uint32_t n = 0; n < 100; ++n) {
    EXPECT_EQ(table.classify(key_n(n), 100 + n, Ns{n}, n), n);
  }
  // Re-classifying folds into the existing id, never mints a new one.
  for (std::uint32_t n = 0; n < 100; ++n) {
    EXPECT_EQ(table.classify(key_n(n), 10, Ns{1000 + n}, 100 + n), n);
  }
  EXPECT_EQ(table.size(), 100u);
  EXPECT_EQ(table.ids(), 100u);
  const auto& st = table.stats_of(7);
  EXPECT_EQ(st.packets, 2u);
  EXPECT_EQ(st.bytes, 107u + 10u);
  EXPECT_EQ(st.first_index, 7u);
  EXPECT_EQ(st.first_seen, 7);
  EXPECT_EQ(st.last_seen, 1007);
  EXPECT_EQ(table.key_of(7), key_n(7));
}

TEST(FlowTable, SurvivesCollisionHeavyProbeChains) {
  // 20 keys all hashing to the same initial slot: every insert after the
  // first probes through the whole chain. All must stay addressable.
  const auto keys = colliding_keys(20);
  FlowTable table;
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(table.classify(keys[i], 64, Ns{i}, i), i);
  }
  for (std::uint32_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(table.lookup(keys[i]), i);
  }

  // Erasing mid-chain must not break probes to the keys behind it.
  EXPECT_TRUE(table.erase(keys[5]));
  EXPECT_FALSE(table.erase(keys[5]));  // already gone
  EXPECT_EQ(table.tombstones(), 1u);
  EXPECT_EQ(table.lookup(keys[5]), kNoFlow);
  for (std::uint32_t i = 6; i < keys.size(); ++i) {
    EXPECT_EQ(table.lookup(keys[i]), i) << "chain broken behind tombstone";
  }
}

TEST(FlowTable, ReusesTombstonesAndRetiresIds) {
  const auto keys = colliding_keys(22);
  FlowTable table;
  for (std::uint32_t i = 0; i < 20; ++i) table.classify(keys[i], 64, 0, i);
  ASSERT_TRUE(table.erase(keys[3]));
  ASSERT_TRUE(table.erase(keys[9]));
  EXPECT_EQ(table.tombstones(), 2u);
  EXPECT_EQ(table.size(), 18u);
  EXPECT_FALSE(table.live(3));
  EXPECT_FALSE(table.live(9));

  // A colliding insert claims the first tombstone on its probe path
  // instead of extending the chain.
  EXPECT_EQ(table.classify(keys[20], 64, 0, 20), 20u);
  EXPECT_EQ(table.tombstones(), 1u);

  // Re-classifying an erased key is a NEW flow: fresh id, fresh stats;
  // the retired id stays retired (the id space is append-only).
  const FlowId reborn = table.classify(keys[3], 64, Ns{99}, 21);
  EXPECT_EQ(reborn, 21u);
  EXPECT_FALSE(table.live(3));
  EXPECT_TRUE(table.live(reborn));
  EXPECT_EQ(table.stats_of(reborn).packets, 1u);
  EXPECT_EQ(table.stats_of(reborn).first_index, 21u);
  EXPECT_EQ(table.lookup(keys[3]), reborn);
  EXPECT_EQ(table.ids(), 22u);
  EXPECT_EQ(table.size(), 20u);
}

TEST(FlowTable, RehashReclaimsTombstonesAndKeepsIds) {
  FlowTable table;
  // Churn: enough insert+erase cycles that tombstones alone force a
  // cleanup rehash (growth triggers at 50% live+tombstone load).
  for (std::uint32_t n = 0; n < 200; ++n) {
    table.classify(key_n(n), 64, Ns{n}, n);
    if (n % 2 == 0) ASSERT_TRUE(table.erase(key_n(n)));
  }
  EXPECT_EQ(table.size(), 100u);
  EXPECT_EQ(table.ids(), 200u);
  // Post-rehash the live keys still map to their original dense ids.
  for (std::uint32_t n = 1; n < 200; n += 2) {
    EXPECT_EQ(table.lookup(key_n(n)), n);
    EXPECT_TRUE(table.live(n));
  }
  for (std::uint32_t n = 0; n < 200; n += 2) {
    EXPECT_EQ(table.lookup(key_n(n)), kNoFlow);
  }
}

TEST(FlowTable, GrowsTo100kFlows) {
  constexpr std::uint32_t kFlows = 100'000;
  FlowTable table;
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    ASSERT_EQ(table.classify(key_n(n), 100, Ns{n}, n), n);
  }
  EXPECT_EQ(table.size(), kFlows);
  EXPECT_EQ(table.ids(), kFlows);
  // Load factor stays <= 50% and capacity is a power of two.
  EXPECT_GE(table.capacity(), 2u * kFlows);
  EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u);
  // Spot-check lookups across the whole range after all the rehashing.
  for (std::uint32_t n = 0; n < kFlows; n += 997) {
    EXPECT_EQ(table.lookup(key_n(n)), n);
    EXPECT_EQ(table.stats_of(n).first_index, n);
  }
}

TEST(FlowTable, ReservePreallocatesCapacity) {
  FlowTable table;
  table.reserve(100'000);
  const std::size_t capacity = table.capacity();
  EXPECT_GE(capacity, 2u * 100'000u);
  for (std::uint32_t n = 0; n < 100'000; ++n) {
    table.classify(key_n(n), 64, 0, n);
  }
  EXPECT_EQ(table.capacity(), capacity) << "reserve() should pre-size";
}

TEST(FlowTable, MergeEntryFoldsCountersByEarliestArrival) {
  FlowTable table;
  table.classify(key_n(0), 100, Ns{50}, 5);
  table.classify(key_n(0), 100, Ns{60}, 6);

  FlowTable::FlowStats other;
  other.packets = 3;
  other.bytes = 300;
  other.first_index = 2;  // earlier than the resident entry
  other.first_seen = 20;
  other.last_seen = 999;
  table.merge_entry(key_n(0), other);

  const auto& st = table.stats_of(0);
  EXPECT_EQ(st.packets, 5u);
  EXPECT_EQ(st.bytes, 500u);
  EXPECT_EQ(st.first_index, 2u);  // min() semantics
  EXPECT_EQ(st.first_seen, 20);
  EXPECT_EQ(st.last_seen, 999);

  // Merging an unseen key inserts it verbatim with the next dense id.
  table.merge_entry(key_n(1), other);
  EXPECT_EQ(table.lookup(key_n(1)), 1u);
  EXPECT_EQ(table.stats_of(1).packets, 3u);
  EXPECT_EQ(table.stats_of(1).first_index, 2u);
}

}  // namespace
}  // namespace choir::flow
