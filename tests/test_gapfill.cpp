#include "replay/gapfill.hpp"

#include <gtest/gtest.h>

#include "choir/middlebox.hpp"
#include "net/switch.hpp"
#include "test_helpers.hpp"

namespace choir::replay {
namespace {

using test::SinkEndpoint;
using test::make_frame;

net::NicConfig quiet() {
  net::NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  cfg.dma_pull_base = 300;
  return cfg;
}

struct GapFillFixture : ::testing::Test {
  sim::EventQueue queue;
  net::Link in_stub{queue};
  net::Link out_link{queue, net::LinkConfig{0}};
  SinkEndpoint sink;
  net::PhysNic in_phys{queue, quiet(), Rng(1), in_stub};
  net::PhysNic out_phys{queue, quiet(), Rng(2), out_link};
  net::Vf& in_vf{in_phys.add_vf(pktio::mac_for_node(10), true)};
  net::Vf& out_vf{out_phys.add_vf(pktio::mac_for_node(10), true)};
  sim::NodeClock clock{sim::TscClock(2.5), sim::SystemClock()};
  pktio::Mempool pool{8192};
  std::unique_ptr<app::Middlebox> mb;

  GapFillFixture() { out_link.connect(sink); }

  const app::Recording& record(int n, Ns gap) {
    app::ChoirConfig cfg;
    cfg.loop_check_ns = 0.0;
    cfg.poll.jitter_sigma_ns = 0.0;
    mb = std::make_unique<app::Middlebox>(queue, clock, in_vf, out_vf, cfg,
                                          Rng(3));
    mb->start();
    mb->start_record();
    for (int i = 0; i < n; ++i) {
      in_phys.deliver(make_frame(pool, 1400, i, 1, 4),
                      microseconds(10) + i * gap);
    }
    queue.run();
    mb->stop_record();
    sink.deliveries.clear();
    return mb->recording();
  }
};

TEST_F(GapFillFixture, SendsAllRealPacketsInterleavedWithFiller) {
  const auto& rec = record(100, 2000);
  GapFillReplayer replayer(queue, clock, out_vf, rec, {});
  replayer.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  EXPECT_EQ(replayer.real_packets_sent(), 100u);
  EXPECT_GT(replayer.filler_frames_sent(), 100u);  // gaps need filling
  std::size_t real = 0, filler = 0;
  for (const auto& d : sink.deliveries) {
    (d.invalid_fcs ? filler : real) += 1;
  }
  EXPECT_EQ(real, 100u);
  EXPECT_EQ(filler, replayer.filler_frames_sent());
}

TEST_F(GapFillFixture, WireIsKeptBusy) {
  const auto& rec = record(50, 2000);
  GapFillReplayer replayer(queue, clock, out_vf, rec, {});
  replayer.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  // Between the first and last delivery the wire never idles more than
  // one max-size filler (that is the whole point of the technique).
  for (std::size_t i = 1; i < sink.deliveries.size(); ++i) {
    const Ns gap =
        sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time;
    EXPECT_LE(gap, serialization_ns(1500, gbps(100)) + 5);
  }
}

TEST_F(GapFillFixture, RealPacketSpacingIsSerializationExact) {
  const auto& rec = record(50, 2000);
  GapFillReplayer replayer(queue, clock, out_vf, rec, {});
  replayer.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  std::vector<Ns> real_times;
  for (const auto& d : sink.deliveries) {
    if (!d.invalid_fcs) real_times.push_back(d.wire_time);
  }
  ASSERT_EQ(real_times.size(), 50u);
  // Filler sizing reproduces the *recorded* burst spacing (which sits on
  // the forwarding loop's poll grid) to within one minimum-filler
  // serialization time.
  const auto& bursts = mb->recording().bursts();
  ASSERT_EQ(bursts.size(), 50u);  // one packet per burst at this gap
  for (std::size_t i = 1; i < real_times.size(); ++i) {
    const double recorded_gap =
        clock.tsc.ticks_to_ns(bursts[i].tsc - bursts[i - 1].tsc);
    EXPECT_NEAR(static_cast<double>(real_times[i] - real_times[i - 1]),
                recorded_gap, 12.0);
  }
}

TEST_F(GapFillFixture, FillerDiscardedByNextHop) {
  const auto& rec = record(30, 2000);
  // Route the replay through a switch: bad-FCS fillers die at ingress.
  net::Switch sw(queue, net::SwitchConfig{}, Rng(4));
  const auto in_port = sw.add_port();
  const auto out_port = sw.add_port();
  sw.set_port_forward(in_port, out_port);
  SinkEndpoint far_sink;
  sw.egress_link(out_port).connect(far_sink);
  out_link.connect(sw.ingress(in_port));

  GapFillReplayer replayer(queue, clock, out_vf, rec, {});
  replayer.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  EXPECT_EQ(far_sink.deliveries.size(), 30u);
  for (const auto& d : far_sink.deliveries) {
    EXPECT_FALSE(d.invalid_fcs);
  }
  EXPECT_EQ(sw.fcs_drops(), replayer.filler_frames_sent());
}

TEST_F(GapFillFixture, FillerBytesAccountForGapTime) {
  const auto& rec = record(20, 2000);
  GapFillReplayer::Config cfg;
  GapFillReplayer replayer(queue, clock, out_vf, rec, cfg);
  replayer.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  // 19 gaps of 2 us minus 112 ns of real serialization each, at 100 G
  // ~= 23.6 KB of filler per gap... in total:
  const double gap_time = 19.0 * (2000.0 - 112.0);
  const double expected_bytes = gap_time * gbps(100) / (8.0 * kNsPerSec);
  EXPECT_NEAR(static_cast<double>(replayer.filler_bytes_sent()),
              expected_bytes, expected_bytes * 0.05);
}

TEST_F(GapFillFixture, EmptyRecordingIsNoop) {
  app::Recording empty;
  GapFillReplayer replayer(queue, clock, out_vf, empty, {});
  replayer.schedule_replay(milliseconds(1));
  queue.run();
  EXPECT_EQ(replayer.real_packets_sent(), 0u);
  EXPECT_FALSE(replayer.active());
}

TEST_F(GapFillFixture, SharedWireContentionSqueezesTenants) {
  // The Section 9 argument: on a shared NIC, the filler stream occupies
  // the full line rate, so a competing tenant gets backpressured out of
  // its descriptors — gap filling "would negatively impact other users".
  const auto& rec = record(200, 500);
  net::NicConfig small_queue = quiet();
  // Re-create the out PhysNic with a second (competing) VF would require
  // rebuilding the fixture; instead attach the competitor to out_phys.
  net::Vf& competitor = out_phys.add_vf(pktio::mac_for_node(77));
  GapFillReplayer replayer(queue, clock, out_vf, rec, {});
  replayer.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  // Competitor blasts 1500-byte frames as fast as it can; unaccepted
  // frames are abandoned (a real tenant would retry and fall behind).
  pktio::Mempool cpool(8192);
  std::uint64_t offered = 0, taken = 0;
  for (int burst = 0; burst < 200; ++burst) {
    queue.schedule_at(clock.system.read(queue.now()) + milliseconds(1) +
                          burst * microseconds(1),
                      [&, burst] {
                        pktio::Mbuf* pkts[16];
                        std::uint16_t have = 0;
                        for (; have < 16; ++have) {
                          pkts[have] = cpool.alloc();
                          if (pkts[have] == nullptr) break;
                          pkts[have]->frame.wire_len = 1500;
                          pkts[have]->frame.payload_token = 0xC0;
                        }
                        offered += have;
                        const auto sent = competitor.backend_tx(pkts, have);
                        taken += sent;
                        for (std::uint16_t i = sent; i < have; ++i) {
                          pktio::Mempool::release(pkts[i]);
                        }
                      });
  }
  (void)small_queue;
  queue.run();
  // Combined offered load exceeded 100 G: the shared descriptor ring
  // backpressured the competing tenant.
  EXPECT_GT(offered, 0u);
  EXPECT_LT(taken, offered);
  // And all real replay packets still made it out.
  EXPECT_EQ(replayer.real_packets_sent(), 200u);
}

}  // namespace
}  // namespace choir::replay
