#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "test_helpers.hpp"

namespace choir::gen {
namespace {

using test::SinkEndpoint;

net::NicConfig quiet() {
  net::NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  return cfg;
}

StreamConfig stream(std::uint64_t count, BitsPerSec rate = gbps(40),
                    std::uint32_t bytes = 1400) {
  StreamConfig cfg;
  cfg.flow.src_mac = pktio::mac_for_node(1);
  cfg.flow.dst_mac = pktio::mac_for_node(2);
  cfg.flow.src_ip = pktio::ip_for_node(1);
  cfg.flow.dst_ip = pktio::ip_for_node(2);
  cfg.flow.src_port = 7000;
  cfg.flow.dst_port = 7001;
  cfg.stream_id = 5;
  cfg.frame_bytes = bytes;
  cfg.rate = rate;
  cfg.count = count;
  cfg.start = microseconds(10);
  return cfg;
}

struct GenFixture : ::testing::Test {
  sim::EventQueue queue;
  SinkEndpoint sink;
  net::Link egress{queue, net::LinkConfig{0}};
  pktio::Mempool pool{200000};

  GenFixture() { egress.connect(sink); }
};

TEST_F(GenFixture, CbrEmitsExactCount) {
  net::PhysNic nic(queue, quiet(), Rng(1), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  CbrGenerator gen(queue, vf, pool, stream(1000));
  gen.start();
  queue.run();
  EXPECT_EQ(gen.emitted(), 1000u);
  EXPECT_TRUE(gen.done());
  EXPECT_EQ(sink.deliveries.size(), 1000u);
}

TEST_F(GenFixture, CbrGapIsExact) {
  net::PhysNic nic(queue, quiet(), Rng(2), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  CbrGenerator gen(queue, vf, pool, stream(500));
  gen.start();
  queue.run();
  // 1400 B at 40 G: 280 ns per frame, exactly, at the wire.
  for (std::size_t i = 1; i < sink.deliveries.size(); ++i) {
    const Ns gap =
        sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time;
    EXPECT_EQ(gap, 280);
  }
  EXPECT_NEAR(gen.gap_ns(), 280.0, 0.01);
}

TEST_F(GenFixture, CbrAtEightyGig) {
  net::PhysNic nic(queue, quiet(), Rng(3), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  CbrGenerator gen(queue, vf, pool, stream(200, gbps(80)));
  gen.start();
  queue.run();
  const Ns gap = sink.deliveries[1].wire_time - sink.deliveries[0].wire_time;
  EXPECT_EQ(gap, 140);
}

TEST_F(GenFixture, CbrSequentialPayloadTokens) {
  net::PhysNic nic(queue, quiet(), Rng(4), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  CbrGenerator gen(queue, vf, pool, stream(100));
  gen.start();
  queue.run();
  for (std::size_t i = 1; i < sink.deliveries.size(); ++i) {
    EXPECT_NE(sink.deliveries[i].payload_token,
              sink.deliveries[i - 1].payload_token);
  }
}

TEST_F(GenFixture, CbrZeroCountIsNoop) {
  net::PhysNic nic(queue, quiet(), Rng(5), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  CbrGenerator gen(queue, vf, pool, stream(0));
  gen.start();
  queue.run();
  EXPECT_TRUE(sink.deliveries.empty());
}

TEST_F(GenFixture, CbrSurvivesPoolExhaustion) {
  net::PhysNic nic(queue, quiet(), Rng(6), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  pktio::Mempool tiny(16);
  CbrGenerator gen(queue, vf, tiny, stream(1000));
  gen.start();
  queue.run();
  EXPECT_GT(gen.alloc_failures(), 0u);
  EXPECT_GT(sink.deliveries.size(), 0u);
}

TEST_F(GenFixture, CbrMisconfigurationThrows) {
  net::PhysNic nic(queue, quiet(), Rng(7), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  StreamConfig bad = stream(10);
  bad.rate = 0;
  EXPECT_THROW(CbrGenerator(queue, vf, pool, bad), Error);
  StreamConfig tiny_frame = stream(10);
  tiny_frame.frame_bytes = 20;
  EXPECT_THROW(CbrGenerator(queue, vf, pool, tiny_frame), Error);
}

TEST_F(GenFixture, PoissonMeanRateApproximatesTarget) {
  net::PhysNic nic(queue, quiet(), Rng(8), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  PoissonGenerator gen(queue, vf, pool, stream(20000), Rng(9));
  gen.start();
  queue.run();
  ASSERT_EQ(gen.emitted(), 20000u);
  const Ns span = sink.deliveries.back().wire_time -
                  sink.deliveries.front().wire_time;
  const double mean_gap = static_cast<double>(span) / 19999.0;
  EXPECT_NEAR(mean_gap, 280.0, 15.0);
}

TEST_F(GenFixture, PoissonGapsAreVariable) {
  net::PhysNic nic(queue, quiet(), Rng(10), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  PoissonGenerator gen(queue, vf, pool, stream(1000), Rng(11));
  gen.start();
  queue.run();
  int distinct = 0;
  for (std::size_t i = 2; i < sink.deliveries.size(); ++i) {
    const Ns g1 =
        sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time;
    const Ns g2 =
        sink.deliveries[i - 1].wire_time - sink.deliveries[i - 2].wire_time;
    if (g1 != g2) ++distinct;
  }
  EXPECT_GT(distinct, 500);
}

TEST_F(GenFixture, ImixMixesSizes) {
  net::PhysNic nic(queue, quiet(), Rng(12), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  ImixGenerator gen(queue, vf, pool, stream(12000), Rng(13));
  gen.start();
  queue.run();
  std::size_t small = 0, medium = 0, large = 0;
  for (const auto& d : sink.deliveries) {
    if (d.wire_len == 64) ++small;
    if (d.wire_len == 576) ++medium;
    if (d.wire_len == 1500) ++large;
  }
  EXPECT_EQ(small + medium + large, sink.deliveries.size());
  // 7:4:1 mix, loose bands.
  EXPECT_NEAR(static_cast<double>(small) / 12000.0, 7.0 / 12.0, 0.05);
  EXPECT_NEAR(static_cast<double>(medium) / 12000.0, 4.0 / 12.0, 0.05);
  EXPECT_NEAR(static_cast<double>(large) / 12000.0, 1.0 / 12.0, 0.05);
}

TEST_F(GenFixture, ImixHoldsAggregateRate) {
  net::PhysNic nic(queue, quiet(), Rng(14), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  ImixGenerator gen(queue, vf, pool, stream(20000, gbps(10)), Rng(15));
  gen.start();
  queue.run();
  std::uint64_t bytes = 0;
  for (const auto& d : sink.deliveries) bytes += d.wire_len;
  const Ns span = sink.deliveries.back().wire_time -
                  sink.deliveries.front().wire_time;
  const double rate = static_cast<double>(bytes) * 8.0 /
                      (static_cast<double>(span) / kNsPerSec);
  EXPECT_NEAR(rate / gbps(10), 1.0, 0.1);
}

}  // namespace
}  // namespace choir::gen
