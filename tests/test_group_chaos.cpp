// Replay-group protocol under injected faults (chaos label): straggler
// detection and resync under a mid-replay NIC stall, eviction and
// quorum degradation when a node goes silent, per-flow kappa isolating
// the damage to the missing shard, and sequenced-control robustness
// when the command channel to a node subset turns lossy. Every faulted
// run must also stay bit-identical across repeats and --jobs settings.
#include <gtest/gtest.h>

#include "fault/chaos.hpp"
#include "testbed/experiment.hpp"

namespace choir {
namespace {

/// The experiment's replay schedule, reproduced so fault windows can be
/// aimed at a specific run's replay phase (same constants as
/// run_experiment; the group tests pin sync sigma so arm_margin is the
/// 5 ms floor).
struct Schedule {
  Ns trial = 0;
  Ns arm = 0;
  Ns wall_start0 = 0;
  Ns spacing = 0;
  Ns wall_start(int r) const { return wall_start0 + r * spacing; }
};

Schedule schedule_for(const testbed::EnvironmentPreset& env,
                      std::uint64_t packets) {
  Schedule s;
  s.trial = static_cast<Ns>(mean_iat_ns(env.frame_bytes, env.rate) *
                            static_cast<double>(packets));
  s.arm = std::max<Ns>(milliseconds(5),
                       static_cast<Ns>(6.0 * env.replayer_sync_sigma_ns));
  const Ns record_end = milliseconds(10) + s.trial + milliseconds(5);
  s.wall_start0 = record_end + milliseconds(30) + s.arm;
  s.spacing = s.trial + 2 * s.arm + milliseconds(40);
  return s;
}

testbed::ExperimentConfig group_config(int nodes, std::uint64_t packets) {
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_single();
  cfg.env.replayers = nodes;
  cfg.env.replayer_sync_fraction_of_run = 0.0;
  cfg.env.replayer_sync_sigma_ns = 25.0;
  cfg.packets = packets;
  cfg.runs = 2;
  cfg.seed = 11;
  cfg.collect_series = false;
  cfg.group.enabled = true;
  cfg.flow.enabled = true;
  cfg.flow.flows = 48;
  cfg.flow.shards = 8;
  // Tight health cadence so straggling is observable inside a ~2 ms
  // trial (the defaults are sized for full-scale runs).
  cfg.group.config.beacon_interval = microseconds(100);
  cfg.group.config.check_interval = microseconds(250);
  cfg.group.config.straggle_threshold = microseconds(400);
  cfg.group.config.resync_slack = microseconds(50);
  cfg.group.config.resync_retry = microseconds(500);
  return cfg;
}

TEST(GroupChaos, StragglerIsResyncedAndRunCompletes) {
  testbed::ExperimentConfig cfg = group_config(3, 6000);
  const Schedule s = schedule_for(cfg.env, cfg.packets);
  // Node 1's out-port stalls for two thirds of run B's replay: its
  // replay TX (and beacons) freeze, the coordinator sees it fall behind
  // the group horizon, and the resync command lands while the node is
  // still stuck — it fast-forwards past the stalled stretch and
  // finishes with the group. (A shorter stall is self-healing: the
  // paced retry loop drains the backlog before any resync arrives.)
  cfg.env.faults = fault::group_node_stall_plan(
      1, s.wall_start(1) + s.trial / 4, 2 * s.trial / 3);
  const auto result = testbed::run_experiment(cfg);

  EXPECT_GE(result.group_stats.stragglers_detected, 1u);
  EXPECT_GE(result.group_stats.resyncs_sent, 1u);
  EXPECT_EQ(result.group_stats.evictions, 0u);
  EXPECT_EQ(result.group_stats.rounds_started, 2u);
  ASSERT_EQ(result.group_members.size(), 3u);
  EXPECT_GE(result.group_members[1].straggles, 1u);
  EXPECT_GE(result.group_members[1].resyncs, 1u);
  EXPECT_EQ(result.group_members[0].resyncs, 0u);
  EXPECT_EQ(result.group_members[2].resyncs, 0u);
  // The member obeyed: it fast-forwarded, skipping recorded packets.
  ASSERT_EQ(result.middlebox_stats.size(), 3u);
  EXPECT_GE(result.middlebox_stats[1].group_resyncs, 1u);
  EXPECT_GT(result.middlebox_stats[1].group_skipped_packets, 0u);
  EXPECT_EQ(result.middlebox_stats[0].group_skipped_packets, 0u);
  EXPECT_EQ(result.middlebox_stats[2].group_skipped_packets, 0u);
  // Run B is thinner than run A by roughly the skipped packets, but the
  // run completed and the surviving traffic still matches.
  EXPECT_LT(result.capture_sizes[1], result.capture_sizes[0]);
  EXPECT_GT(result.mean.kappa, 0.5);
}

TEST(GroupChaos, SilentNodeIsEvictedAndQuorumCompletes) {
  testbed::ExperimentConfig cfg = group_config(3, 6000);
  cfg.group.config.eviction_timeout = milliseconds(2);
  const Schedule s = schedule_for(cfg.env, cfg.packets);
  // Node 2 goes completely silent just before run B's replay begins and
  // stays down past the round: it passed the barrier but emits nothing,
  // beacons stop, the eviction timeout fires, and the round completes
  // (degraded) on the surviving pair — with node 2's flow shard wholly
  // absent from the capture.
  cfg.env.faults = fault::group_node_stall_plan(
      2, s.wall_start(1) - milliseconds(1), s.spacing);
  const auto result = testbed::run_experiment(cfg);

  EXPECT_EQ(result.group_stats.evictions, 1u);
  ASSERT_EQ(result.group_members.size(), 3u);
  EXPECT_EQ(result.group_members[2].state, app::MemberState::kEvicted);
  EXPECT_GE(result.group_stats.rounds_degraded, 1u);
  EXPECT_EQ(result.group_stats.rounds_started, 2u);

  // Per-flow kappa attributes the damage to the evicted node's shard:
  // its flows grade one-sided (missing from run B) while flows on the
  // surviving nodes stay healthy.
  ASSERT_EQ(result.flow_comparisons.size(), 1u);
  const auto& fc = result.flow_comparisons[0];
  std::size_t damaged = 0, healthy = 0;
  for (const auto& f : fc.flows) {
    if (f.metrics.kappa <= 0.5) {
      ++damaged;
    } else if (f.metrics.kappa > 0.9) {
      ++healthy;
    }
  }
  EXPECT_GT(damaged, 0u) << "the evicted shard's flows must grade damaged";
  EXPECT_GT(healthy, 0u) << "surviving shards must stay healthy";
  EXPECT_LE(fc.aggregate.worst, 0.5);
  // Run B's capture is missing the evicted node's packets.
  EXPECT_LT(result.capture_sizes[1], result.capture_sizes[0]);
}

TEST(GroupChaos, LossyControlPathToNodeSubsetIsSurvived) {
  // The egress feeding node 1's in-port drops half its frames across
  // the whole schedule. With retry enabled the sequenced channel keeps
  // command semantics: duplicates are deduped, lost copies are covered
  // by redundant transmissions, and both rounds still start on every
  // node. N=3 keeps two nodes on a clean channel as control.
  testbed::ExperimentConfig cfg = group_config(3, 4000);
  cfg.env.control_retry.max_attempts = 6;
  cfg.env.control_retry.initial_backoff = microseconds(100);
  cfg.env.control_retry.multiplier = 2.0;
  cfg.env.control_retry.timeout = milliseconds(4);
  cfg.env.faults =
      fault::group_control_loss_plan(1, 0, seconds(10), 0.5);
  const auto result = testbed::run_experiment(cfg);

  EXPECT_GT(result.control_retries, 0u);
  EXPECT_EQ(result.group_stats.rounds_started, 2u);
  EXPECT_EQ(result.group_stats.members_started, 6u);
  EXPECT_EQ(result.group_stats.evictions, 0u);
  // Redundant copies that did land were deduped by the sequenced layer.
  std::uint64_t duplicates = 0;
  for (const auto& mb : result.middlebox_stats) {
    duplicates += mb.control_duplicates;
  }
  EXPECT_GT(duplicates, 0u);
  EXPECT_GT(result.mean.kappa, 0.8);
}

TEST(GroupChaos, FaultedGroupRunsAreBitIdentical) {
  // Same faulted config twice, and once with parallel evaluation: the
  // whole outcome — kappa, capture bytes, group accounting — must be
  // identical, or the chaos suite cannot gate regressions.
  testbed::ExperimentConfig cfg = group_config(3, 6000);
  const Schedule s = schedule_for(cfg.env, cfg.packets);
  cfg.env.faults = fault::group_node_stall_plan(
      1, s.wall_start(1) + s.trial / 4, 2 * s.trial / 3);
  cfg.runs = 3;
  cfg.eval_jobs = 1;
  const auto a = testbed::run_experiment(cfg);
  const auto b = testbed::run_experiment(cfg);
  cfg.eval_jobs = 4;
  const auto c = testbed::run_experiment(cfg);

  EXPECT_EQ(a.mean.kappa, b.mean.kappa);
  EXPECT_EQ(a.mean.kappa, c.mean.kappa);
  EXPECT_EQ(a.capture_sizes, b.capture_sizes);
  EXPECT_EQ(a.capture_sizes, c.capture_sizes);
  EXPECT_EQ(a.group_stats.beacons_rx, b.group_stats.beacons_rx);
  EXPECT_EQ(a.group_stats.resyncs_sent, b.group_stats.resyncs_sent);
  EXPECT_EQ(a.group_stats.resyncs_sent, c.group_stats.resyncs_sent);
  EXPECT_EQ(a.fault_stats.total(), b.fault_stats.total());
  ASSERT_EQ(a.group_members.size(), b.group_members.size());
  for (std::size_t i = 0; i < a.group_members.size(); ++i) {
    EXPECT_EQ(a.group_members[i].beacons, b.group_members[i].beacons);
    EXPECT_EQ(a.group_members[i].resyncs, b.group_members[i].resyncs);
    EXPECT_EQ(a.group_members[i].state, b.group_members[i].state);
  }
}

TEST(GroupChaos, ClockDegradePresetWidensBarrierResiduals) {
  // A clock-degrade window over node 1's PTP servo inflates the residual
  // the barrier samples, without touching the other nodes.
  testbed::ExperimentConfig cfg = group_config(3, 4000);
  const auto quiet = testbed::run_experiment(cfg);
  cfg.env.faults =
      fault::group_clock_degrade_plan(1, 0, seconds(10), 1000.0);
  const auto degraded = testbed::run_experiment(cfg);
  EXPECT_GT(degraded.fault_stats.clock_degrades, 0u);
  EXPECT_GT(degraded.group_stats.barrier_worst_residual_ns,
            quiet.group_stats.barrier_worst_residual_ns);
}

}  // namespace
}  // namespace choir
