// Replay-group protocol, quiet paths: beacon packing, exact packet
// splits, flow-sharded trace partitioning, and an end-to-end N-node
// barrier-started run that completes cleanly and deterministically.
// (Faulted group runs — stragglers, resync, eviction — live in the
// chaos-labelled test_group_chaos.)
#include "choir/group.hpp"

#include <gtest/gtest.h>

#include "flow/flow_shard.hpp"
#include "testbed/experiment.hpp"
#include "trace/flow_classify.hpp"
#include "trace/partition.hpp"

namespace choir {
namespace {

TEST(GroupProtocol, BeaconPackRoundTrip) {
  const std::uint64_t arg =
      app::pack_beacon(0x1234, app::BeaconPhase::kReplaying, 0xabc,
                       microseconds(123456));
  const app::BeaconFields f = app::unpack_beacon(arg);
  EXPECT_EQ(f.member, 0x1234);
  EXPECT_EQ(f.phase, app::BeaconPhase::kReplaying);
  EXPECT_EQ(f.round, 0xabc);
  EXPECT_EQ(f.progress, microseconds(123456));
}

TEST(GroupProtocol, BeaconPackClampsAndTruncates) {
  // Progress is carried in whole microseconds and saturates at 32 bits;
  // the round field wraps at 12 bits.
  const app::BeaconFields f = app::unpack_beacon(
      app::pack_beacon(7, app::BeaconPhase::kDone, 0x1fff, 1234));
  EXPECT_EQ(f.round, 0xfff);
  EXPECT_EQ(f.progress, microseconds(1));  // 1234 ns -> 1 us floor
  const app::BeaconFields sat = app::unpack_beacon(
      app::pack_beacon(7, app::BeaconPhase::kIdle, 0, Ns{1} << 62));
  EXPECT_EQ(sat.progress, microseconds(0xffffffffULL));
}

TEST(GroupProtocol, MemberStateNames) {
  EXPECT_STREQ(app::member_state_name(app::MemberState::kJoining), "JOINING");
  EXPECT_STREQ(app::member_state_name(app::MemberState::kEvicted), "EVICTED");
}

TEST(GroupProtocol, PacketSplitConservesExactly) {
  // The split must conserve the total for any (total, N), including
  // totals that do not divide evenly — the old floor-share split lost
  // up to N-1 packets per trial.
  for (const int n : {3, 5, 7}) {
    for (const std::uint64_t total : {20'000ULL, 16'001ULL, 99ULL, 7ULL}) {
      std::uint64_t sum = 0;
      std::uint64_t lo = total, hi = 0;
      for (int i = 0; i < n; ++i) {
        const std::uint64_t share = testbed::packets_for_replayer(total, n, i);
        sum += share;
        lo = std::min(lo, share);
        hi = std::max(hi, share);
      }
      EXPECT_EQ(sum, total) << "N=" << n << " total=" << total;
      EXPECT_LE(hi - lo, 1u) << "shares must differ by at most one packet";
    }
  }
}

trace::CaptureRecord udp_record(std::uint16_t src_node, std::uint16_t port,
                                Ns ts, std::uint64_t token) {
  pktio::Frame frame;
  frame.wire_len = 200;
  pktio::FlowAddress f;
  f.src_mac = pktio::mac_for_node(src_node);
  f.dst_mac = pktio::mac_for_node(4);
  f.src_ip = pktio::ip_for_node(src_node);
  f.dst_ip = pktio::ip_for_node(4);
  f.src_port = port;
  f.dst_port = 7001;
  pktio::write_eth_ipv4_udp(frame, f);
  frame.payload_token = token;
  return trace::CaptureRecord::from_frame(frame, ts);
}

TEST(GroupProtocol, PartitionConservesAndRebases) {
  trace::Capture cap("mix");
  const int kFlows = 24;
  for (int i = 0; i < 240; ++i) {
    cap.append(udp_record(1, static_cast<std::uint16_t>(7100 + i % kFlows),
                          milliseconds(3) + i * 1000,
                          static_cast<std::uint64_t>(i)));
  }
  const trace::PartitionResult part = trace::partition_capture(cap, 4);
  ASSERT_EQ(part.nodes.size(), 4u);
  EXPECT_EQ(part.epoch, milliseconds(3));
  std::size_t total = 0;
  for (const auto& node : part.nodes) total += node.size();
  EXPECT_EQ(total, cap.size());  // conservation
  // Rebase: the globally earliest record now sits at 0, and every node's
  // records keep their original spacing relative to the shared epoch.
  Ns earliest = -1;
  for (const auto& node : part.nodes) {
    for (const auto& r : node.records()) {
      EXPECT_GE(r.timestamp, 0);
      if (earliest < 0 || r.timestamp < earliest) earliest = r.timestamp;
    }
  }
  EXPECT_EQ(earliest, 0);
  // Flow affinity: every packet of a flow lands on the shard node that
  // owns its key.
  for (std::size_t n = 0; n < part.nodes.size(); ++n) {
    for (const auto& r : part.nodes[n].records()) {
      flow::FlowKey key;
      ASSERT_TRUE(trace::key_of_record(r, &key));
      EXPECT_EQ(flow::shard_of_key(key, 4), static_cast<int>(n));
    }
  }
  EXPECT_EQ(part.unclassified, 0u);
}

TEST(GroupProtocol, PartitionRoutesUnparseableToNodeZero) {
  trace::Capture cap("raw");
  trace::CaptureRecord raw;  // no parseable header stack
  raw.timestamp = 50;
  raw.wire_len = 60;
  cap.append(raw);
  cap.append(udp_record(1, 7100, 10, 1));
  const trace::PartitionResult part = trace::partition_capture(cap, 3);
  EXPECT_EQ(part.unclassified, 1u);
  EXPECT_EQ(part.epoch, 10);
  std::size_t total = 0;
  for (const auto& node : part.nodes) total += node.size();
  EXPECT_EQ(total, 2u);
  // The raw record landed on node 0, rebased to 50 - 10 = 40.
  bool found = false;
  for (const auto& r : part.nodes[0].records()) {
    if (!r.has_trailer && r.payload_token == 0 && r.timestamp == 40) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

testbed::ExperimentConfig quiet_group_config(int nodes) {
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_single();
  cfg.env.replayers = nodes;
  // Bare-metal PTP quality on every replay node: the quiet tests probe
  // the protocol, not sync-induced reordering (that is local_dual's
  // territory, and the bench curve covers it at scale).
  cfg.env.replayer_sync_fraction_of_run = 0.0;
  cfg.env.replayer_sync_sigma_ns = 25.0;
  cfg.packets = 3000;
  cfg.runs = 2;
  cfg.seed = 7;
  cfg.collect_series = false;
  cfg.group.enabled = true;
  cfg.flow.enabled = true;
  cfg.flow.flows = 64;
  cfg.flow.shards = 8;
  return cfg;
}

TEST(GroupProtocol, QuietThreeNodeRunCompletesCleanly) {
  const auto result = testbed::run_experiment(quiet_group_config(3));
  // Every run is one barrier-started round; both completed with every
  // member reaching DONE and nobody straggling or evicted.
  EXPECT_EQ(result.group_stats.rounds_started, 2u);
  EXPECT_EQ(result.group_stats.rounds_completed, 2u);
  EXPECT_EQ(result.group_stats.rounds_degraded, 0u);
  EXPECT_EQ(result.group_stats.members_started, 6u);  // 3 nodes x 2 rounds
  EXPECT_EQ(result.group_stats.ready_timeouts, 0u);
  EXPECT_EQ(result.group_stats.evictions, 0u);
  EXPECT_EQ(result.group_stats.stragglers_detected, 0u);
  ASSERT_EQ(result.group_members.size(), 3u);
  for (const auto& m : result.group_members) {
    EXPECT_EQ(m.state, app::MemberState::kDone);
    EXPECT_GT(m.beacons, 0u);
    EXPECT_EQ(m.resyncs, 0u);
  }
  // The barrier sampled a PTP residual for each member.
  EXPECT_GT(result.group_stats.barrier_worst_residual_ns, 0.0);
  // The replay itself is healthy: all three shards made it to the
  // recorder in both runs and consistency is high.
  ASSERT_EQ(result.middlebox_stats.size(), 3u);
  for (const auto& mb : result.middlebox_stats) {
    EXPECT_GT(mb.group_beacons_sent, 0u);
    EXPECT_EQ(mb.group_prepares, 2u);
    EXPECT_EQ(mb.group_resyncs, 0u);
    EXPECT_EQ(mb.replays_aborted, 0u);
  }
  EXPECT_GE(result.capture_sizes[0], 2950u);
  EXPECT_LE(result.capture_sizes[0], 3000u);
  EXPECT_GE(result.capture_sizes[1], 2950u);
  EXPECT_GT(result.mean.kappa, 0.9);
}

TEST(GroupProtocol, GroupRunIsDeterministic) {
  const auto a = testbed::run_experiment(quiet_group_config(4));
  const auto b = testbed::run_experiment(quiet_group_config(4));
  EXPECT_EQ(a.mean.kappa, b.mean.kappa);
  EXPECT_EQ(a.capture_sizes, b.capture_sizes);
  EXPECT_EQ(a.group_stats.beacons_rx, b.group_stats.beacons_rx);
  EXPECT_EQ(a.group_stats.barrier_worst_residual_ns,
            b.group_stats.barrier_worst_residual_ns);
  ASSERT_EQ(a.group_members.size(), b.group_members.size());
  for (std::size_t i = 0; i < a.group_members.size(); ++i) {
    EXPECT_EQ(a.group_members[i].beacons, b.group_members[i].beacons);
    EXPECT_EQ(a.group_members[i].barrier_residual_ns,
              b.group_members[i].barrier_residual_ns);
  }
}

TEST(GroupProtocol, EvaluationJobsDoNotChangeGroupResults) {
  testbed::ExperimentConfig cfg = quiet_group_config(3);
  cfg.runs = 3;
  cfg.eval_jobs = 1;
  const auto seq = testbed::run_experiment(cfg);
  cfg.eval_jobs = 4;
  const auto par = testbed::run_experiment(cfg);
  ASSERT_EQ(seq.comparisons.size(), par.comparisons.size());
  for (std::size_t i = 0; i < seq.comparisons.size(); ++i) {
    EXPECT_EQ(seq.comparisons[i].metrics.kappa,
              par.comparisons[i].metrics.kappa);
  }
  EXPECT_EQ(seq.group_stats.beacons_rx, par.group_stats.beacons_rx);
}

TEST(GroupProtocol, LegacyDualPathStillWorks) {
  // The refactor must leave the hardwired 2-node path byte-compatible:
  // same topology, same controllers, no group machinery.
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_dual();
  cfg.packets = 2000;
  cfg.runs = 2;
  cfg.seed = 7;
  cfg.collect_series = false;
  const auto result = testbed::run_experiment(cfg);
  EXPECT_EQ(result.group_stats.rounds_started, 0u);
  EXPECT_TRUE(result.group_members.empty());
  EXPECT_GT(result.mean.kappa, 0.5);
  for (const auto& mb : result.middlebox_stats) {
    EXPECT_EQ(mb.group_beacons_sent, 0u);
    EXPECT_EQ(mb.group_prepares, 0u);
  }
}

}  // namespace
}  // namespace choir
