#include "pktio/headers.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace choir::pktio {
namespace {

FlowAddress sample_flow() {
  FlowAddress f;
  f.src_mac = mac_for_node(3);
  f.dst_mac = mac_for_node(4);
  f.src_ip = ip_for_node(3);
  f.dst_ip = ip_for_node(4);
  f.src_port = 7000;
  f.dst_port = 7001;
  return f;
}

TEST(Headers, WriteParseRoundTrip) {
  Frame frame;
  frame.wire_len = 1400;
  write_eth_ipv4_udp(frame, sample_flow());
  EXPECT_EQ(frame.header_len, kEthIpv4UdpLen);

  const ParsedHeaders p = parse_eth_ipv4_udp(frame);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.flow.src_mac.bytes, mac_for_node(3).bytes);
  EXPECT_EQ(p.flow.dst_mac.bytes, mac_for_node(4).bytes);
  EXPECT_EQ(p.flow.src_ip, ip_for_node(3));
  EXPECT_EQ(p.flow.dst_ip, ip_for_node(4));
  EXPECT_EQ(p.flow.src_port, 7000);
  EXPECT_EQ(p.flow.dst_port, 7001);
}

TEST(Headers, LengthFieldsDeriveFromWireLen) {
  Frame frame;
  frame.wire_len = 1400;
  write_eth_ipv4_udp(frame, sample_flow());
  const ParsedHeaders p = parse_eth_ipv4_udp(frame);
  EXPECT_EQ(p.ip_total_len, 1400 - kEthHeaderLen);
  EXPECT_EQ(p.udp_len, 1400 - kEthHeaderLen - kIpv4HeaderLen);
}

TEST(Headers, MinimumFrameSizeEnforced) {
  Frame frame;
  frame.wire_len = 40;  // below 42-byte header stack
  EXPECT_THROW(write_eth_ipv4_udp(frame, sample_flow()), Error);
}

TEST(Headers, ParseRejectsShortHeader) {
  Frame frame;
  frame.wire_len = 1400;
  frame.header_len = 10;
  EXPECT_FALSE(parse_eth_ipv4_udp(frame).valid);
}

TEST(Headers, ParseRejectsNonIpv4) {
  Frame frame;
  frame.wire_len = 1400;
  write_eth_ipv4_udp(frame, sample_flow());
  frame.header[12] = 0x86;  // EtherType -> not IPv4
  frame.header[13] = 0xdd;
  EXPECT_FALSE(parse_eth_ipv4_udp(frame).valid);
}

TEST(Headers, ParseRejectsNonUdp) {
  Frame frame;
  frame.wire_len = 1400;
  write_eth_ipv4_udp(frame, sample_flow());
  frame.header[kEthHeaderLen + 9] = 6;  // TCP
  EXPECT_FALSE(parse_eth_ipv4_udp(frame).valid);
}

TEST(Headers, ChecksumValidatesToZero) {
  Frame frame;
  frame.wire_len = 1400;
  write_eth_ipv4_udp(frame, sample_flow());
  // RFC 1071: summing the header including the stored checksum must give
  // the complement of zero.
  const std::uint8_t* ip = frame.header.data() + kEthHeaderLen;
  std::uint32_t sum = 0;
  for (int i = 0; i < kIpv4HeaderLen; i += 2) {
    sum += static_cast<std::uint32_t>((ip[i] << 8) | ip[i + 1]);
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(sum, 0xffffu);
}

TEST(Headers, MacForNodeIsLocallyAdministeredUnicast) {
  const MacAddress mac = mac_for_node(300);
  EXPECT_EQ(mac.bytes[0] & 0x02, 0x02);  // locally administered
  EXPECT_EQ(mac.bytes[0] & 0x01, 0x00);  // unicast
}

TEST(Headers, MacAndIpDistinctPerNode) {
  EXPECT_NE(mac_for_node(1).bytes, mac_for_node(2).bytes);
  EXPECT_NE(ip_for_node(1), ip_for_node(2));
}

TEST(Headers, DifferentFlowsDifferentBytes) {
  Frame a, b;
  a.wire_len = b.wire_len = 100;
  write_eth_ipv4_udp(a, sample_flow());
  FlowAddress other = sample_flow();
  other.dst_port = 9999;
  write_eth_ipv4_udp(b, other);
  EXPECT_NE(a.header, b.header);
}

}  // namespace
}  // namespace choir::pktio
