// Shared fixtures/doubles for the device-model tests.
#pragma once

#include <vector>

#include "net/link.hpp"
#include "pktio/headers.hpp"
#include "pktio/mbuf.hpp"

namespace choir::test {

/// Link endpoint that records deliveries and frees the buffers.
struct SinkEndpoint : net::Endpoint {
  struct Delivery {
    Ns wire_time;
    std::uint32_t wire_len;
    std::uint64_t payload_token;
    bool invalid_fcs;
  };
  std::vector<Delivery> deliveries;

  void deliver(pktio::Mbuf* pkt, Ns wire_time) override {
    deliveries.push_back(Delivery{wire_time, pkt->frame.wire_len,
                                  pkt->frame.payload_token,
                                  pkt->frame.invalid_fcs});
    pktio::Mempool::release(pkt);
  }
};

/// Allocate a frame with the given size/token, addressed src -> dst.
inline pktio::Mbuf* make_frame(pktio::Mempool& pool, std::uint32_t wire_len,
                               std::uint64_t token, std::uint16_t src = 1,
                               std::uint16_t dst = 2) {
  pktio::Mbuf* m = pool.alloc();
  if (m == nullptr) return nullptr;
  m->frame.wire_len = wire_len;
  m->frame.payload_token = token;
  pktio::FlowAddress flow;
  flow.src_mac = pktio::mac_for_node(src);
  flow.dst_mac = pktio::mac_for_node(dst);
  flow.src_ip = pktio::ip_for_node(src);
  flow.dst_ip = pktio::ip_for_node(dst);
  flow.src_port = 7000;
  flow.dst_port = 7001;
  pktio::write_eth_ipv4_udp(m->frame, flow);
  return m;
}

}  // namespace choir::test
