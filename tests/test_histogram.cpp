#include "analysis/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

#include "common/expect.hpp"

namespace choir::analysis {
namespace {

TEST(Histogram, CentreBinCatchesSmallDeltas) {
  DeltaHistogram h({10, 100});
  h.add(0);
  h.add(5);
  h.add(-5);
  h.add(10);    // inclusive boundary
  h.add(-10);
  EXPECT_EQ(h.bins()[2].count, 5u);  // layout: [neg-of, neg, centre, ...]
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, SignedBinsSeparate) {
  DeltaHistogram h({10, 100});
  h.add(50);
  h.add(-50);
  // bins: [-inf,-100) [-100,-10) [-10,10] (10,100] (100,inf)
  EXPECT_EQ(h.bins()[1].count, 1u);
  EXPECT_EQ(h.bins()[3].count, 1u);
}

TEST(Histogram, OverflowBinsOpenEnded) {
  DeltaHistogram h({10, 100});
  h.add(1e12);
  h.add(-1e12);
  EXPECT_EQ(h.bins()[0].count, 1u);
  EXPECT_EQ(h.bins()[4].count, 1u);
}

TEST(Histogram, BoundariesBelongToInnerBin) {
  DeltaHistogram h({10, 100});
  h.add(100);   // (10, 100] -> positive inner
  h.add(-100);  // [-100, -10) is exclusive at -100... goes to [-100,-10)?
  // Convention: magnitude in (e_{k-1}, e_k] -> bucket k; so |100| -> bin
  // edge 100's bucket on each side.
  EXPECT_EQ(h.bins()[3].count, 1u);
  EXPECT_EQ(h.bins()[1].count, 1u);
}

TEST(Histogram, FractionsSumToOne) {
  DeltaHistogram h = DeltaHistogram::log_ns();
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    h.add(rng.normal(0, 1e5));
  }
  double total = 0;
  for (std::size_t i = 0; i < h.bins().size(); ++i) total += h.fraction(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Histogram, LogNsSpansPaperRange) {
  DeltaHistogram h = DeltaHistogram::log_ns();
  // 8 edges -> 17 bins.
  EXPECT_EQ(h.bins().size(), 17u);
  h.add(3.0);      // within +-10 ns (the paper's headline bucket)
  h.add(5e7);      // the dual-replayer latency outlier region
  EXPECT_EQ(h.bins()[8].count, 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, AddAllMatchesAdd) {
  DeltaHistogram a({10}), b({10});
  const std::vector<double> values{1, -20, 300, 0};
  for (const double v : values) a.add(v);
  b.add_all(values);
  for (std::size_t i = 0; i < a.bins().size(); ++i) {
    EXPECT_EQ(a.bins()[i].count, b.bins()[i].count);
  }
}

TEST(Histogram, RenderShowsNonEmptyBins) {
  DeltaHistogram h({10, 100});
  h.add(5);
  h.add(50);
  const std::string text = h.render();
  EXPECT_NE(text.find("50"), std::string::npos);  // a 50% line exists
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Histogram, EmptyRenderIsEmpty) {
  DeltaHistogram h({10});
  EXPECT_TRUE(h.render().empty());
}

TEST(Histogram, InvalidEdgesRejected) {
  EXPECT_THROW(DeltaHistogram({}), Error);
  EXPECT_THROW(DeltaHistogram({-5, 10}), Error);
  EXPECT_THROW(DeltaHistogram({100, 10}), Error);
}

TEST(FormatNs, UnitsScale) {
  EXPECT_EQ(format_ns(5), "+5 ns");
  EXPECT_EQ(format_ns(-1500), "-1.5 us");
  EXPECT_EQ(format_ns(2.5e6), "+2.5 ms");
  EXPECT_EQ(format_ns(3e9), "+3 s");
}

}  // namespace
}  // namespace choir::analysis
