// Cross-module integration: the paper's qualitative findings must hold at
// reduced scale, end to end (generator -> middlebox -> switch -> recorder
// -> metrics), and the full artifact loop (capture -> trace file -> pcap)
// must round-trip.
#include <cstdio>

#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "testbed/experiment.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_file.hpp"

namespace choir::testbed {
namespace {

ExperimentConfig cfg_for(EnvironmentPreset env, std::uint64_t packets,
                         std::uint64_t seed = 11) {
  ExperimentConfig cfg;
  cfg.env = std::move(env);
  cfg.packets = packets;
  cfg.runs = 4;
  cfg.seed = seed;
  return cfg;
}

TEST(Integration, FabricLessConsistentThanLocal) {
  // The paper's headline: FABRIC environments add an order of magnitude
  // of IAT variance over the local bare-metal testbed.
  const auto local = run_experiment(cfg_for(local_single(), 15000));
  const auto fabric =
      run_experiment(cfg_for(fabric_dedicated_40_epoch1(), 15000));
  EXPECT_GT(fabric.mean.iat, 5.0 * local.mean.iat);
  EXPECT_LT(fabric.mean.kappa, local.mean.kappa);
}

TEST(Integration, DualReplayerReorders) {
  // Section 6.2: parallel replay adds ordering inconsistency; most moved
  // packets travel as whole bursts.
  const auto dual = run_experiment(cfg_for(local_dual(), 15000));
  double worst_o = 0;
  std::size_t moved = 0;
  for (const auto& c : dual.comparisons) {
    worst_o = std::max(worst_o, c.metrics.ordering);
    moved += c.moved;
  }
  EXPECT_GT(worst_o, 0.0);
  EXPECT_GT(moved, 0u);
}

TEST(Integration, NoisySharedNicDegradesKappa) {
  const auto quiet = run_experiment(cfg_for(fabric_shared_40(), 12000));
  const auto noisy =
      run_experiment(cfg_for(fabric_shared_40_noisy(), 12000));
  EXPECT_LT(noisy.mean.kappa, quiet.mean.kappa);
  EXPECT_GT(noisy.mean.iat, quiet.mean.iat);
}

TEST(Integration, SingleReplayerNeverReordersOrDrops) {
  // U and O are exactly 0 in every quiet single-replayer environment the
  // paper evaluates; the simulation must reproduce that, not merely
  // approximate it.
  for (const auto& env :
       {local_single(), fabric_dedicated_40_epoch1(), fabric_shared_40(),
        fabric_dedicated_80()}) {
    const auto result = run_experiment(cfg_for(env, 10000));
    for (const auto& c : result.comparisons) {
      EXPECT_EQ(c.metrics.uniqueness, 0.0) << env.name;
      EXPECT_EQ(c.metrics.ordering, 0.0) << env.name;
    }
  }
}

TEST(Integration, EightyGigSustained) {
  // Section 5/7: the replayer sustains higher rates; at 80 Gbps nothing
  // is lost end to end.
  const auto result = run_experiment(cfg_for(fabric_dedicated_80(), 20000));
  for (const auto size : result.capture_sizes) {
    EXPECT_EQ(size, 20000u);
  }
  EXPECT_EQ(result.replay_tx_drops, 0u);
}

TEST(Integration, CaptureArtifactsRoundTrip) {
  ExperimentConfig cfg = cfg_for(local_single(), 2000);
  cfg.keep_captures = true;
  const auto result = run_experiment(cfg);
  const std::string trc = ::testing::TempDir() + "integration.trc";
  const std::string pcap = ::testing::TempDir() + "integration.pcap";
  write_trace(result.captures[0], trc);
  trace::write_pcap(result.captures[0], pcap);

  const trace::Capture loaded = trace::read_trace(trc);
  const auto cmp = core::compare_trials(rebased_trial(result.captures[0]),
                                        rebased_trial(loaded));
  EXPECT_EQ(cmp.metrics.kappa, 1.0);
  std::remove(trc.c_str());
  std::remove(pcap.c_str());
}

TEST(Integration, MetricsRecomputableFromSavedTraces) {
  // The paper's artifact flow: save per-run pcaps, analyse offline.
  ExperimentConfig cfg = cfg_for(local_single(), 3000);
  cfg.keep_captures = true;
  const auto result = run_experiment(cfg);

  std::vector<std::string> paths;
  for (std::size_t i = 0; i < result.captures.size(); ++i) {
    paths.push_back(::testing::TempDir() + "run" + std::to_string(i) +
                    ".trc");
    write_trace(result.captures[i], paths.back());
  }
  const auto trial_a = rebased_trial(trace::read_trace(paths[0]));
  for (std::size_t r = 1; r < paths.size(); ++r) {
    const auto trial_b = rebased_trial(trace::read_trace(paths[r]));
    const auto offline = core::compare_trials(trial_a, trial_b);
    EXPECT_NEAR(offline.metrics.kappa,
                result.comparisons[r - 1].metrics.kappa, 1e-12);
  }
  for (const auto& p : paths) std::remove(p.c_str());
}

TEST(Integration, NoBufferLeaksAcrossFullExperiment) {
  // Indirect leak check: a second identical experiment in the same
  // process must behave identically (pools are per-experiment; a leak
  // would surface as alloc failures or count drift).
  const auto a = run_experiment(cfg_for(local_single(), 5000, 3));
  const auto b = run_experiment(cfg_for(local_single(), 5000, 3));
  EXPECT_EQ(a.recorded_packets, b.recorded_packets);
  EXPECT_EQ(a.capture_sizes, b.capture_sizes);
}

}  // namespace
}  // namespace choir::testbed
