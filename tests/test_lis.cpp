#include "core/lis.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace choir::core {
namespace {

// Brute-force LIS length in O(n^2) for cross-checking.
std::size_t lis_brute(const std::vector<std::uint32_t>& v) {
  if (v.empty()) return 0;
  std::vector<std::size_t> best(v.size(), 1);
  std::size_t answer = 1;
  for (std::size_t i = 1; i < v.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (v[j] < v[i]) best[i] = std::max(best[i], best[j] + 1);
    }
    answer = std::max(answer, best[i]);
  }
  return answer;
}

bool is_valid_increasing_subsequence(const std::vector<std::uint32_t>& v,
                                     const std::vector<std::uint32_t>& pos) {
  for (std::size_t k = 1; k < pos.size(); ++k) {
    if (pos[k] <= pos[k - 1]) return false;
    if (v[pos[k]] <= v[pos[k - 1]]) return false;
  }
  return true;
}

TEST(Lis, EmptyInput) {
  EXPECT_TRUE(
      longest_increasing_subsequence(std::vector<std::uint32_t>{}).empty());
  EXPECT_EQ(lis_length(std::vector<std::uint32_t>{}), 0u);
}

TEST(Lis, SingleElement) {
  const auto r = longest_increasing_subsequence(std::vector<std::uint32_t>{42});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 0u);
}

TEST(Lis, AlreadySorted) {
  const std::vector<std::uint32_t> v{1, 2, 3, 4, 5};
  EXPECT_EQ(longest_increasing_subsequence(v).size(), 5u);
}

TEST(Lis, ReversedGivesLengthOne) {
  const std::vector<std::uint32_t> v{5, 4, 3, 2, 1};
  EXPECT_EQ(longest_increasing_subsequence(v).size(), 1u);
}

TEST(Lis, ClassicExample) {
  const std::vector<std::uint32_t> v{10, 9, 2, 5, 3, 7, 101, 18};
  const auto r = longest_increasing_subsequence(v);
  EXPECT_EQ(r.size(), 4u);  // e.g. 2, 3, 7, 18
  EXPECT_TRUE(is_valid_increasing_subsequence(v, r));
}

TEST(Lis, StrictlyIncreasingRejectsEqualRuns) {
  const std::vector<std::uint32_t> v{3, 3, 3, 3};
  EXPECT_EQ(longest_increasing_subsequence(v).size(), 1u);
}

TEST(Lis, SwappedNeighborPair) {
  // A permutation with one adjacent swap keeps n-1 in order.
  const std::vector<std::uint32_t> v{0, 2, 1, 3, 4};
  EXPECT_EQ(longest_increasing_subsequence(v).size(), 4u);
}

TEST(Lis, LengthHelperMatchesRecovery) {
  Rng rng(100);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint32_t> v(200);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.uniform_u64(500));
    EXPECT_EQ(lis_length(v), longest_increasing_subsequence(v).size());
  }
}

struct LisRandomCase {
  std::uint64_t seed;
  std::size_t n;
  std::uint64_t value_range;
};

class LisRandomTest : public ::testing::TestWithParam<LisRandomCase> {};

TEST_P(LisRandomTest, MatchesBruteForceAndIsValid) {
  const auto param = GetParam();
  Rng rng(param.seed);
  std::vector<std::uint32_t> v(param.n);
  for (auto& x : v) {
    x = static_cast<std::uint32_t>(rng.uniform_u64(param.value_range));
  }
  const auto r = longest_increasing_subsequence(v);
  EXPECT_EQ(r.size(), lis_brute(v));
  EXPECT_TRUE(is_valid_increasing_subsequence(v, r));
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, LisRandomTest,
    ::testing::Values(LisRandomCase{1, 10, 10}, LisRandomCase{2, 10, 100},
                      LisRandomCase{3, 50, 8}, LisRandomCase{4, 50, 50},
                      LisRandomCase{5, 100, 1000}, LisRandomCase{6, 200, 20},
                      LisRandomCase{7, 200, 200000}, LisRandomCase{8, 333, 2},
                      LisRandomCase{9, 500, 500}, LisRandomCase{10, 64, 64}));

TEST(Lis, PermutationIdentityRecovery) {
  // For a permutation shifted by a rotation, LIS = n - shift.
  const std::size_t n = 1000, shift = 137;
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint32_t>((i + shift) % n);
  }
  EXPECT_EQ(longest_increasing_subsequence(v).size(), n - shift);
}

TEST(Lis, LargeInputFast) {
  // O(n log n): 200k elements should be near-instant.
  Rng rng(11);
  std::vector<std::uint32_t> v(200000);
  for (auto& x : v) x = static_cast<std::uint32_t>(rng.next_u64());
  const auto r = longest_increasing_subsequence(v);
  EXPECT_GT(r.size(), 500u);  // ~2*sqrt(n) expected
  EXPECT_TRUE(is_valid_increasing_subsequence(v, r));
}

}  // namespace
}  // namespace choir::core
