#include "pktio/mbuf.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace choir::pktio {
namespace {

TEST(Mempool, AllocatesUpToCapacity) {
  Mempool pool(4);
  std::vector<Mbuf*> taken;
  for (int i = 0; i < 4; ++i) {
    Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    taken.push_back(m);
  }
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.alloc_failures(), 1u);
  for (Mbuf* m : taken) Mempool::release(m);
  EXPECT_EQ(pool.available(), 4u);
}

TEST(Mempool, AllocResetsBufferState) {
  Mempool pool(1);
  Mbuf* m = pool.alloc();
  m->frame.wire_len = 1400;
  m->frame.has_trailer = true;
  m->rx_timestamp = 999;
  m->port = 3;
  Mempool::release(m);
  Mbuf* again = pool.alloc();
  EXPECT_EQ(again, m);  // same storage
  EXPECT_EQ(again->frame.wire_len, 0u);
  EXPECT_FALSE(again->frame.has_trailer);
  EXPECT_EQ(again->rx_timestamp, 0);
  EXPECT_EQ(again->port, 0);
  EXPECT_EQ(again->refcnt, 1u);
  Mempool::release(again);
}

TEST(Mempool, RetainKeepsBufferAlive) {
  // Zero-copy recording: a second reference keeps the buffer out of the
  // pool after the forwarding path drops its own.
  Mempool pool(1);
  Mbuf* m = pool.alloc();
  Mempool::retain(m);
  EXPECT_EQ(m->refcnt, 2u);
  Mempool::release(m);  // forwarding path done
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.alloc(), nullptr);
  Mempool::release(m);  // recording cleared
  EXPECT_EQ(pool.available(), 1u);
}

TEST(Mempool, ManyRetainsBalance) {
  Mempool pool(1);
  Mbuf* m = pool.alloc();
  for (int i = 0; i < 10; ++i) Mempool::retain(m);
  for (int i = 0; i < 10; ++i) Mempool::release(m);
  EXPECT_EQ(pool.available(), 0u);
  Mempool::release(m);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(Mempool, ReleaseDeadBufferThrows) {
  Mempool pool(1);
  Mbuf* m = pool.alloc();
  Mempool::release(m);
  EXPECT_THROW(Mempool::release(m), Error);
}

TEST(Mempool, ZeroCapacityRejected) {
  EXPECT_THROW(Mempool(0), Error);
}

TEST(Mempool, CountsInUse) {
  Mempool pool(10);
  std::vector<Mbuf*> taken;
  for (int i = 0; i < 6; ++i) taken.push_back(pool.alloc());
  EXPECT_EQ(pool.in_use(), 6u);
  EXPECT_EQ(pool.capacity(), 10u);
  for (Mbuf* m : taken) Mempool::release(m);
}

TEST(Mempool, ChurnReusesStorage) {
  Mempool pool(8);
  for (int round = 0; round < 1000; ++round) {
    Mbuf* m = pool.alloc();
    ASSERT_NE(m, nullptr);
    Mempool::release(m);
  }
  EXPECT_EQ(pool.available(), 8u);
}

TEST(Frame, PayloadLenAccounting) {
  Frame f;
  f.wire_len = 1400;
  f.header_len = 42;
  f.has_trailer = true;
  EXPECT_EQ(f.payload_len(), 1400u - 42u - 16u);
  f.has_trailer = false;
  EXPECT_EQ(f.payload_len(), 1400u - 42u);
}

TEST(Frame, PayloadLenNeverUnderflows) {
  Frame f;
  f.wire_len = 50;
  f.header_len = 42;
  f.has_trailer = true;  // 42 + 16 > 50
  EXPECT_EQ(f.payload_len(), 0u);
}

}  // namespace
}  // namespace choir::pktio
