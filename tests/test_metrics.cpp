// Unit tests for the Section 3 metrics, including the paper's worked
// examples.
#include "core/metrics.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace choir::core {
namespace {

Trial make_trial(const std::vector<std::uint64_t>& ids,
                 const std::vector<Ns>& times) {
  Trial t;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    t.push_back(TrialPacket{PacketId{0, ids[i]}, times[i]});
  }
  return t;
}

Trial cbr_trial(std::size_t n, Ns gap, Ns start = 0) {
  Trial t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back(TrialPacket{PacketId{0, i + 1},
                            start + static_cast<Ns>(i) * gap});
  }
  return t;
}

TEST(MetricU, PaperWorkedExample) {
  // Section 3: A has 10 packets, B dropped one -> U = 1/19.
  Trial a = cbr_trial(10, 100);
  Trial b;
  for (std::size_t i = 0; i < 10; ++i) {
    if (i == 4) continue;
    b.push_back(a[i]);
  }
  const auto r = compare_trials(a, b);
  EXPECT_NEAR(r.metrics.uniqueness, 1.0 / 19.0, 1e-12);
}

TEST(MetricU, ZeroForIdenticalPackets) {
  const Trial a = cbr_trial(100, 50);
  EXPECT_EQ(compare_trials(a, a).metrics.uniqueness, 0.0);
}

TEST(MetricU, OneForDisjointTrials) {
  const Trial a = cbr_trial(10, 100);
  Trial b;
  for (std::size_t i = 0; i < 10; ++i) {
    b.push_back(TrialPacket{PacketId{1, i + 100}, static_cast<Ns>(i) * 100});
  }
  EXPECT_EQ(compare_trials(a, b).metrics.uniqueness, 1.0);
}

TEST(MetricU, BothEmptyIsConsistent) {
  const auto r = compare_trials(Trial{}, Trial{});
  EXPECT_EQ(r.metrics.uniqueness, 0.0);
  EXPECT_EQ(r.metrics.kappa, 1.0);
}

TEST(MetricO, ZeroWhenOrderPreserved) {
  const Trial a = cbr_trial(50, 10);
  Trial b = a;  // same order, shifted times do not matter for O
  EXPECT_EQ(compare_trials(a, b).metrics.ordering, 0.0);
}

TEST(MetricO, AdjacentSwap) {
  Trial a = cbr_trial(4, 100);
  Trial b = make_trial({1, 3, 2, 4}, {0, 100, 200, 300});
  // One move of distance 1 over the max sum 0+1+2+3+4 = 10.
  EXPECT_NEAR(compare_trials(a, b).metrics.ordering, 1.0 / 10.0, 1e-12);
}

TEST(MetricO, BoundedByOneOnReversal) {
  // The reversal is the paper's worst case; O must be in (0, 1].
  const std::size_t n = 101;
  Trial a = cbr_trial(n, 10);
  Trial b;
  for (std::size_t i = n; i-- > 0;) b.push_back(a[i]);
  const double o = compare_trials(a, b).metrics.ordering;
  EXPECT_GT(o, 0.5);
  EXPECT_LE(o, 1.0);
}

TEST(MetricO, IgnoresPacketsNotInA) {
  // d_i = 0 for packets absent from A (covered by U instead).
  Trial a = cbr_trial(3, 100);
  Trial b = make_trial({1, 99, 2, 3}, {0, 50, 100, 200});
  EXPECT_EQ(compare_trials(a, b).metrics.ordering, 0.0);
}

TEST(MetricL, ZeroForIdenticalTimes) {
  const Trial a = cbr_trial(100, 280);
  EXPECT_EQ(compare_trials(a, a).metrics.latency, 0.0);
}

TEST(MetricL, ConstantShiftCancels) {
  // l is relative to each trial's first packet, so a rigid shift of all
  // of B is invisible to L (and to I).
  const Trial a = cbr_trial(100, 280);
  const Trial b = cbr_trial(100, 280, /*start=*/123456);
  const auto r = compare_trials(a, b);
  EXPECT_EQ(r.metrics.latency, 0.0);
  EXPECT_EQ(r.metrics.iat, 0.0);
}

TEST(MetricL, PaperExampleRelativeArrivals) {
  // Section 3: common packet arrives 9 ns after start of A, 8 ns after
  // start of B -> |l_A - l_B| = 1 for that packet.
  Trial a = make_trial({1, 2}, {0, 9});
  Trial b = make_trial({1, 2}, {0, 8});
  const auto r = compare_trials(a, b);
  // Numerator = |0-0| + |9-8| = 1. Denominator = 2 * max(8-0, 9-0) = 18.
  EXPECT_NEAR(r.metrics.latency, 1.0 / 18.0, 1e-12);
  EXPECT_NEAR(r.sum_abs_latency_delta_ns, 1.0, 1e-12);
}

TEST(MetricL, SinglePacketTrialsAreConsistent) {
  Trial a = make_trial({1}, {100});
  Trial b = make_trial({1}, {900});
  const auto r = compare_trials(a, b);
  EXPECT_EQ(r.metrics.latency, 0.0);
  EXPECT_EQ(r.metrics.iat, 0.0);
  EXPECT_EQ(r.metrics.kappa, 1.0);
}

TEST(MetricI, GapChangeMeasured) {
  Trial a = make_trial({1, 2, 3}, {0, 100, 200});
  Trial b = make_trial({1, 2, 3}, {0, 150, 200});
  const auto r = compare_trials(a, b);
  // g deltas: p1: 0 (first), p2: |100-150| = 50, p3: |100-50| = 50.
  // Denominator = (200-0) + (200-0) = 400.
  EXPECT_NEAR(r.metrics.iat, 100.0 / 400.0, 1e-12);
  EXPECT_NEAR(r.sum_abs_iat_delta_ns, 100.0, 1e-12);
}

TEST(MetricI, FirstPacketBaseCaseIsZeroGap) {
  // t_X0 = t_X(-1) so g_X0 = 0 by definition; a lone different gap to
  // the first packet contributes nothing.
  Trial a = make_trial({1, 2}, {0, 100});
  Trial b = make_trial({1, 2}, {50, 150});
  EXPECT_EQ(compare_trials(a, b).metrics.iat, 0.0);
}

TEST(MetricI, UsesFullTrialNeighborsNotJustCommon) {
  // g is measured against the *previous packet in that trial*, even if
  // that neighbor is not a common packet.
  Trial a = make_trial({1, 2, 3}, {0, 100, 200});
  Trial b = make_trial({1, 9, 3}, {0, 100, 200});  // 9 not in A
  const auto r = compare_trials(a, b, {});
  // Common = {1, 3}. g_A(3) = 100, g_B(3) = 100 -> I numerator 0.
  EXPECT_EQ(r.metrics.iat, 0.0);
  EXPECT_EQ(r.common, 2u);
}

TEST(Kappa, PerfectConsistencyIsOne) {
  EXPECT_EQ(kappa_of(0, 0, 0, 0), 1.0);
}

TEST(Kappa, CompleteInconsistencyIsZero) {
  EXPECT_NEAR(kappa_of(1, 1, 1, 1), 0.0, 1e-12);
}

TEST(Kappa, SingleComponentHalvesAtOne) {
  EXPECT_NEAR(kappa_of(1, 0, 0, 0), 0.5, 1e-12);
}

TEST(Kappa, MatchesHandComputedVector) {
  const double u = 0.1, o = 0.2, l = 0.3, i = 0.4;
  const double expected = 1.0 - std::sqrt(u * u + o * o + l * l + i * i) / 2.0;
  EXPECT_DOUBLE_EQ(kappa_of(u, o, l, i), expected);
}

TEST(Compare, SeriesCollectedOnRequest) {
  const Trial a = cbr_trial(10, 100);
  Trial b = cbr_trial(10, 100);
  ComparisonOptions opt;
  opt.collect_series = true;
  const auto r = compare_trials(a, b, opt);
  EXPECT_EQ(r.series.iat_delta_ns.size(), 10u);
  EXPECT_EQ(r.series.latency_delta_ns.size(), 10u);
  EXPECT_EQ(r.fraction_iat_within(10.0), 1.0);
}

TEST(Compare, SeriesSkippedByDefault) {
  const Trial a = cbr_trial(10, 100);
  const auto r = compare_trials(a, a);
  EXPECT_TRUE(r.series.iat_delta_ns.empty());
}

TEST(Compare, FractionWithinThreshold) {
  Trial a = make_trial({1, 2, 3, 4}, {0, 100, 200, 300});
  Trial b = make_trial({1, 2, 3, 4}, {0, 100, 230, 300});
  ComparisonOptions opt;
  opt.collect_series = true;
  const auto r = compare_trials(a, b, opt);
  // Packet 3's gap changed by +30, packet 4's by -30; 2 of 4 within 10ns.
  EXPECT_DOUBLE_EQ(r.fraction_iat_within(10.0), 0.5);
  EXPECT_DOUBLE_EQ(r.fraction_iat_within(30.0), 1.0);
}

TEST(Compare, CountsAreConsistent) {
  Trial a = cbr_trial(20, 100);
  Trial b;
  for (std::size_t i = 0; i < 20; ++i) {
    if (i % 5 == 0) continue;  // drop 4
    b.push_back(a[i]);
  }
  const auto r = compare_trials(a, b);
  EXPECT_EQ(r.size_a, 20u);
  EXPECT_EQ(r.size_b, 16u);
  EXPECT_EQ(r.common, 16u);
  EXPECT_EQ(r.lcs_length, 16u);
  EXPECT_EQ(r.moved, 0u);
}

TEST(Compare, MoveDistanceSeries) {
  Trial a = cbr_trial(6, 100);
  Trial b = make_trial({4, 5, 6, 1, 2, 3}, {0, 100, 200, 300, 400, 500});
  ComparisonOptions opt;
  opt.collect_series = true;
  const auto r = compare_trials(a, b, opt);
  EXPECT_EQ(r.series.move_distance.size(), r.moved);
  for (const auto d : r.series.move_distance) {
    EXPECT_EQ(std::abs(d), 3);
  }
}

}  // namespace
}  // namespace choir::core
