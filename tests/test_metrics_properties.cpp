// Property-based tests: invariants of the Section 3 metrics under random
// trial perturbations (symmetry, normalization, zero-on-identity, and
// monotone response to injected faults).
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/metrics.hpp"

namespace choir::core {
namespace {

Trial random_trial(Rng& rng, std::size_t n, Ns mean_gap) {
  Trial t;
  Ns now = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back(TrialPacket{PacketId{7, i + 1}, now});
    now += static_cast<Ns>(rng.exponential(static_cast<double>(mean_gap))) + 1;
  }
  return t;
}

Trial perturb(Rng& rng, const Trial& base, double drop_p, std::size_t swaps,
              double jitter_sigma) {
  std::vector<TrialPacket> pkts;
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (rng.chance(drop_p)) continue;
    TrialPacket p = base[i];
    p.time += static_cast<Ns>(rng.normal(0.0, jitter_sigma));
    pkts.push_back(p);
  }
  for (std::size_t s = 0; s < swaps && pkts.size() >= 2; ++s) {
    const std::size_t i = rng.uniform_u64(pkts.size() - 1);
    std::swap(pkts[i].id, pkts[i + 1].id);
  }
  return Trial(std::move(pkts));
}

struct PerturbCase {
  std::uint64_t seed;
  std::size_t n;
  double drop_p;
  std::size_t swaps;
  double jitter;
};

class MetricInvariants : public ::testing::TestWithParam<PerturbCase> {};

TEST_P(MetricInvariants, AllComponentsNormalizedAndSymmetric) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const Trial a = random_trial(rng, param.n, 280);
  const Trial b = perturb(rng, a, param.drop_p, param.swaps, param.jitter);

  const auto ab = compare_trials(a, b);
  const auto ba = compare_trials(b, a);

  // Normalization: every component in [0, 1]; kappa in [0, 1].
  for (const double v :
       {ab.metrics.uniqueness, ab.metrics.ordering, ab.metrics.latency,
        ab.metrics.iat}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_GE(ab.metrics.kappa, 0.0);
  EXPECT_LE(ab.metrics.kappa, 1.0);

  // Symmetry: X_AB = X_BA for every component (paper's stated property).
  EXPECT_NEAR(ab.metrics.uniqueness, ba.metrics.uniqueness, 1e-9);
  EXPECT_NEAR(ab.metrics.ordering, ba.metrics.ordering, 1e-9);
  EXPECT_NEAR(ab.metrics.latency, ba.metrics.latency, 1e-9);
  EXPECT_NEAR(ab.metrics.iat, ba.metrics.iat, 1e-9);
  EXPECT_NEAR(ab.metrics.kappa, ba.metrics.kappa, 1e-9);
}

TEST_P(MetricInvariants, IdentityIsPerfectlyConsistent) {
  const auto param = GetParam();
  Rng rng(param.seed ^ 0xABCD);
  const Trial a = random_trial(rng, param.n, 280);
  const auto r = compare_trials(a, a);
  EXPECT_EQ(r.metrics.uniqueness, 0.0);
  EXPECT_EQ(r.metrics.ordering, 0.0);
  EXPECT_EQ(r.metrics.latency, 0.0);
  EXPECT_EQ(r.metrics.iat, 0.0);
  EXPECT_EQ(r.metrics.kappa, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    PerturbationSweep, MetricInvariants,
    ::testing::Values(PerturbCase{1, 50, 0.0, 0, 0.0},
                      PerturbCase{2, 50, 0.1, 0, 0.0},
                      PerturbCase{3, 50, 0.0, 5, 0.0},
                      PerturbCase{4, 50, 0.0, 0, 50.0},
                      PerturbCase{5, 200, 0.05, 10, 25.0},
                      PerturbCase{6, 200, 0.5, 0, 0.0},
                      PerturbCase{7, 500, 0.01, 100, 10.0},
                      PerturbCase{8, 1000, 0.0, 500, 100.0},
                      PerturbCase{9, 1000, 0.2, 50, 500.0},
                      PerturbCase{10, 37, 0.9, 3, 1000.0}));

TEST(MetricMonotonicity, MoreDropsMeansLargerU) {
  Rng rng(77);
  const Trial a = random_trial(rng, 500, 280);
  double prev = -1.0;
  for (const double drop_p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    Rng r2(99);  // fixed perturbation stream, only drop_p varies
    const Trial b = perturb(r2, a, drop_p, 0, 0.0);
    const double u = compare_trials(a, b).metrics.uniqueness;
    EXPECT_GT(u, prev);
    prev = u;
  }
}

TEST(MetricMonotonicity, MoreSwapsMeansLargerO) {
  Rng rng(78);
  const Trial a = random_trial(rng, 500, 280);
  double prev = -1.0;
  for (const std::size_t swaps : {std::size_t{0}, std::size_t{10},
                                  std::size_t{50}, std::size_t{200}}) {
    Rng r2(100);
    const Trial b = perturb(r2, a, 0.0, swaps, 0.0);
    const double o = compare_trials(a, b).metrics.ordering;
    EXPECT_GE(o, prev);
    if (swaps > 0) EXPECT_GT(o, 0.0);
    prev = o;
  }
}

TEST(MetricMonotonicity, MoreJitterMeansLargerI) {
  Rng rng(79);
  const Trial a = random_trial(rng, 500, 280);
  double prev = -1.0;
  for (const double jitter : {0.0, 5.0, 20.0, 80.0}) {
    Rng r2(101);
    const Trial b = perturb(r2, a, 0.0, 0, jitter);
    const double i = compare_trials(a, b).metrics.iat;
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(MetricMonotonicity, KappaFallsAsFaultsRise) {
  Rng rng(80);
  const Trial a = random_trial(rng, 400, 280);
  Rng r_light(200), r_heavy(200);
  const Trial light = perturb(r_light, a, 0.01, 2, 5.0);
  const Trial heavy = perturb(r_heavy, a, 0.2, 100, 200.0);
  EXPECT_GT(compare_trials(a, light).metrics.kappa,
            compare_trials(a, heavy).metrics.kappa);
}

TEST(MetricScaleInvariance, TimeUnitsScaleOut) {
  // Multiplying all timestamps by a constant leaves L and I unchanged
  // (both are ratios of times).
  Rng rng(81);
  const Trial a = random_trial(rng, 300, 280);
  Rng r2(300);
  const Trial b = perturb(r2, a, 0.0, 0, 40.0);

  auto scale = [](const Trial& t, Ns k) {
    std::vector<TrialPacket> pkts(t.packets());
    for (auto& p : pkts) p.time *= k;
    return Trial(std::move(pkts));
  };
  const auto r1 = compare_trials(a, b);
  const auto r10 = compare_trials(scale(a, 10), scale(b, 10));
  EXPECT_NEAR(r1.metrics.latency, r10.metrics.latency, 1e-9);
  EXPECT_NEAR(r1.metrics.iat, r10.metrics.iat, 1e-9);
}

TEST(MetricIndependence, PureJitterLeavesUAndOZero) {
  Rng rng(82);
  const Trial a = random_trial(rng, 300, 280);
  Rng r2(301);
  const Trial b = perturb(r2, a, 0.0, 0, 30.0);
  const auto r = compare_trials(a, b);
  EXPECT_EQ(r.metrics.uniqueness, 0.0);
  EXPECT_EQ(r.metrics.ordering, 0.0);
  EXPECT_GT(r.metrics.iat, 0.0);
}

TEST(MetricIndependence, PureDropsLeaveOZero) {
  Rng rng(83);
  const Trial a = random_trial(rng, 300, 280);
  Rng r2(302);
  const Trial b = perturb(r2, a, 0.2, 0, 0.0);
  const auto r = compare_trials(a, b);
  EXPECT_GT(r.metrics.uniqueness, 0.0);
  EXPECT_EQ(r.metrics.ordering, 0.0);
}

}  // namespace
}  // namespace choir::core
