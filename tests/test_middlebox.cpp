#include "choir/middlebox.hpp"

#include <gtest/gtest.h>

#include "choir/controller.hpp"
#include "common/expect.hpp"
#include "test_helpers.hpp"
#include "trace/tag.hpp"

namespace choir::app {
namespace {

using test::SinkEndpoint;
using test::make_frame;

net::NicConfig quiet() {
  net::NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  cfg.dma_pull_base = 300;
  return cfg;
}

ChoirConfig exact_choir() {
  ChoirConfig cfg;
  cfg.replayer_id = 10;
  cfg.loop_check_ns = 0.0;
  cfg.slip_rate_hz = 0.0;
  cfg.poll.interval = 500;
  cfg.poll.jitter_sigma_ns = 0.0;
  return cfg;
}

struct MbFixture : ::testing::Test {
  sim::EventQueue queue;
  net::Link in_stub{queue};
  net::Link out_link{queue, net::LinkConfig{0}};
  SinkEndpoint sink;
  net::PhysNic in_phys{queue, quiet(), Rng(1), in_stub};
  net::PhysNic out_phys{queue, quiet(), Rng(2), out_link};
  net::Vf& in_vf{in_phys.add_vf(pktio::mac_for_node(10), true)};
  net::Vf& out_vf{out_phys.add_vf(pktio::mac_for_node(10), true)};
  sim::NodeClock clock{sim::TscClock(2.5), sim::SystemClock()};
  pktio::Mempool pool{8192};

  MbFixture() { out_link.connect(sink); }

  void inject(int n, Ns start, Ns gap, std::uint64_t base_token = 0) {
    for (int i = 0; i < n; ++i) {
      in_phys.deliver(make_frame(pool, 1400, base_token + i, 1, 4),
                      start + i * gap);
    }
  }
};

TEST_F(MbFixture, ForwardsTransparently) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(3));
  mb.start();
  inject(100, microseconds(10), 280);
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sink.deliveries[i].payload_token, i);
  }
  EXPECT_EQ(mb.stats().forwarded, 100u);
  EXPECT_EQ(mb.stats().recorded, 0u);
}

TEST_F(MbFixture, ForwardingAddsBoundedLatency) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(4));
  mb.start();
  inject(1, microseconds(10), 0);
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  // Arrival + poll (<=500 ns) + DMA 300 + serialization 112.
  const Ns latency = sink.deliveries[0].wire_time - microseconds(10);
  EXPECT_GE(latency, 300 + 112);
  EXPECT_LE(latency, 500 + 300 + 112 + 1);
}

TEST_F(MbFixture, RecordsWhileActiveOnly) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(5));
  mb.start();
  inject(10, microseconds(10), 280);          // before recording
  queue.schedule_at(microseconds(100), [&] { mb.start_record(); });
  inject(20, microseconds(200), 280, 100);    // recorded
  queue.schedule_at(microseconds(300), [&] { mb.stop_record(); });
  inject(10, microseconds(400), 280, 900);    // after recording
  queue.run();
  EXPECT_EQ(mb.recording().packet_count(), 20u);
  EXPECT_EQ(sink.deliveries.size(), 40u);  // everything still forwarded
}

TEST_F(MbFixture, StampsTagsWhileRecording) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(6));
  mb.start();
  mb.start_record();
  inject(5, microseconds(10), 280);
  queue.run();
  ASSERT_EQ(mb.recording().packet_count(), 5u);
  std::uint64_t expected_seq = 0;
  for (const auto& burst : mb.recording().bursts()) {
    for (const pktio::Mbuf* m : burst.pkts) {
      ASSERT_TRUE(m->frame.has_trailer);
      const auto tag = trace::decode_tag(m->frame.trailer);
      ASSERT_TRUE(tag.has_value());
      EXPECT_EQ(tag->replayer, 10);
      EXPECT_EQ(tag->sequence, expected_seq++);
    }
  }
}

TEST_F(MbFixture, RecordingIsZeroCopy) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(7));
  mb.start();
  mb.start_record();
  inject(50, microseconds(10), 280);
  queue.run();
  // Buffers are held by the recording (not copied, not freed).
  EXPECT_EQ(pool.capacity() - pool.available(), 50u);
  mb.stop_record();
  mb.clear_recording();
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST_F(MbFixture, RecordingKeepsBurstStructure) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(8));
  mb.start();
  mb.start_record();
  // Two widely spaced clumps arrive; they must land in distinct bursts
  // with increasing TSC stamps.
  inject(4, microseconds(10), 100);
  inject(4, microseconds(200), 100, 50);
  queue.run();
  ASSERT_GE(mb.recording().burst_count(), 2u);
  std::uint64_t prev_tsc = 0;
  for (const auto& burst : mb.recording().bursts()) {
    EXPECT_GT(burst.tsc, prev_tsc);
    prev_tsc = burst.tsc;
    EXPECT_LE(burst.pkts.size(), std::size_t{pktio::kMaxBurst});
  }
}

TEST_F(MbFixture, RamBoundStopsRecording) {
  ChoirConfig cfg = exact_choir();
  cfg.max_recorded_packets = 8;
  Middlebox mb(queue, clock, in_vf, out_vf, cfg, Rng(9));
  mb.start();
  mb.start_record();
  inject(64, microseconds(10), 280);
  queue.run();
  EXPECT_LE(mb.recording().packet_count(), 8u);
  EXPECT_GT(mb.stats().record_overflow, 0u);
  EXPECT_EQ(sink.deliveries.size(), 64u);  // forwarding unaffected
}

TEST_F(MbFixture, ControlFramesInterceptedNotForwarded) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(10));
  mb.start();
  pktio::Mbuf* ctl = pool.alloc();
  pktio::FlowAddress flow;
  flow.src_mac = pktio::mac_for_node(3);
  flow.dst_mac = pktio::mac_for_node(10);
  encode_control(ctl->frame, flow, ControlMessage{Op::kStartRecord, 0});
  in_phys.deliver(ctl, microseconds(5));
  inject(3, microseconds(10), 280);
  queue.run();
  EXPECT_EQ(mb.stats().control_frames, 1u);
  EXPECT_EQ(sink.deliveries.size(), 3u);  // the command did not leak out
  EXPECT_TRUE(mb.recording_active());
  EXPECT_EQ(mb.recording().packet_count(), 3u);
}

TEST_F(MbFixture, ClearDuringReplayRefused) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(11));
  mb.start();
  mb.start_record();
  inject(10, microseconds(10), 280);
  queue.run();
  mb.stop_record();
  mb.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  EXPECT_TRUE(mb.replay_active());
  EXPECT_THROW(mb.clear_recording(), Error);
}

TEST_F(MbFixture, ReplayWithEmptyRecordingIsNoop) {
  Middlebox mb(queue, clock, in_vf, out_vf, exact_choir(), Rng(12));
  mb.start();
  mb.schedule_replay(milliseconds(5));
  queue.run();
  EXPECT_EQ(mb.stats().replays_started, 0u);
}

}  // namespace
}  // namespace choir::app
