// Unit tests for the streaming consistency monitor: the incremental LIS
// and IdTable building blocks, closed-form windowed-κ checks on
// synthetic streams, the full-trial-window ≡ offline Eq. 5 equivalence,
// divergence attribution, and the async (worker-thread) mode's
// output-identity with sync mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "core/lis.hpp"
#include "core/metrics.hpp"
#include "monitor/monitor.hpp"

namespace choir::monitor {
namespace {

core::Trial make_trial(const std::vector<std::uint64_t>& ids,
                       const std::vector<Ns>& times) {
  core::Trial t;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    t.push_back(core::TrialPacket{core::PacketId{0, ids[i]}, times[i]});
  }
  return t;
}

core::Trial cbr_trial(std::size_t n, Ns gap, Ns start = 0) {
  core::Trial t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back(core::TrialPacket{core::PacketId{0, i + 1},
                                  start + static_cast<Ns>(i) * gap});
  }
  return t;
}

/// Feed every packet of `b` into an open stream named `name`.
void feed(StreamMonitor& mon, const core::Trial& b,
          const std::string& name = "b") {
  mon.begin_stream(name);
  for (const auto& p : b.packets()) mon.observe(p.id, p.time);
}

MonitorConfig offline_config(std::size_t window_packets = 1u << 20,
                             std::size_t top_k = 16) {
  MonitorConfig cfg;
  cfg.window_packets = window_packets;
  cfg.top_k = top_k;
  cfg.reference_from_first_stream = false;
  return cfg;
}

/// Deterministic jittered copy of `a`: every `drop_every`-th packet is
/// dropped, every `swap_every`-th pair swapped, and times perturbed by a
/// fixed LCG — a realistic imperfect replay with a known seed.
core::Trial perturb(const core::Trial& a, std::uint64_t seed,
                    std::size_t drop_every = 97, std::size_t swap_every = 13,
                    Ns jitter = 40) {
  std::vector<core::TrialPacket> b;
  std::uint64_t s = seed;
  auto next = [&s] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  };
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (drop_every > 0 && i % drop_every == drop_every - 1) continue;
    core::TrialPacket p = a[i];
    p.time += static_cast<Ns>(next() % (2 * jitter + 1)) - jitter;
    b.push_back(p);
  }
  for (std::size_t i = 0; i + 1 < b.size(); i += swap_every) {
    std::swap(b[i], b[i + 1]);
  }
  // Restore monotone non-decreasing times (arrival order defines B).
  for (std::size_t i = 1; i < b.size(); ++i) {
    if (b[i].time < b[i - 1].time) b[i].time = b[i - 1].time;
  }
  return core::Trial(std::move(b));
}

// ---- IncrementalLis ----------------------------------------------------

TEST(IncrementalLis, MatchesOfflineAfterEveryAppend) {
  // LCG-generated sequence with repeats; length() must equal
  // core::lis_length of the prefix after every single append.
  std::uint64_t s = 12345;
  std::vector<std::uint32_t> prefix;
  IncrementalLis lis;
  for (int i = 0; i < 300; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto v = static_cast<std::uint32_t>((s >> 33) % 64);
    prefix.push_back(v);
    lis.append(v);
    ASSERT_EQ(lis.length(), core::lis_length(prefix)) << "after " << i;
  }
  EXPECT_EQ(lis.size(), prefix.size());
}

TEST(IncrementalLis, AdversarialShapes) {
  {
    IncrementalLis lis;  // strictly increasing: LIS == n
    for (std::uint32_t v = 0; v < 100; ++v) lis.append(v);
    EXPECT_EQ(lis.length(), 100u);
  }
  {
    IncrementalLis lis;  // strictly decreasing: LIS == 1
    for (std::uint32_t v = 100; v-- > 0;) lis.append(v);
    EXPECT_EQ(lis.length(), 1u);
  }
  {
    IncrementalLis lis;  // all equal: strictly increasing -> LIS == 1
    for (int i = 0; i < 50; ++i) lis.append(7);
    EXPECT_EQ(lis.length(), 1u);
    lis.clear();
    EXPECT_EQ(lis.length(), 0u);
    EXPECT_EQ(lis.size(), 0u);
  }
}

// ---- IdTable -----------------------------------------------------------

TEST(IdTable, LookupAndOccurrenceCounting) {
  IdTable table;
  const core::Trial ref = cbr_trial(8, 100);
  table.rebuild(ref);
  EXPECT_EQ(table.size(), 8u);

  // Known ids resolve to their reference position with occurrence 0,
  // then count up on repeats.
  const core::PacketId id3{0, 4};  // ref position 3
  IdTable::Hit h = table.observe(id3);
  EXPECT_EQ(h.ref_index, 3u);
  EXPECT_EQ(h.occurrence, 0u);
  h = table.observe(id3);
  EXPECT_EQ(h.ref_index, 3u);
  EXPECT_EQ(h.occurrence, 1u);

  // Unknown ids insert a counting slot but resolve to kNoRef.
  const core::PacketId alien{7, 7};
  h = table.observe(alien);
  EXPECT_EQ(h.ref_index, IdTable::kNoRef);
  EXPECT_EQ(h.occurrence, 0u);
  EXPECT_EQ(table.observe(alien).occurrence, 1u);

  EXPECT_EQ(table.ref_index_of(id3), 3u);
  EXPECT_EQ(table.ref_index_of(core::PacketId{9, 9}), IdTable::kNoRef);
}

TEST(IdTable, EpochBumpResetsOccurrencesInO1) {
  IdTable table;
  table.rebuild(cbr_trial(4, 10));
  const core::PacketId id{0, 2};
  EXPECT_EQ(table.observe(id).occurrence, 0u);
  EXPECT_EQ(table.observe(id).occurrence, 1u);
  table.new_stream();
  EXPECT_EQ(table.observe(id).occurrence, 0u);  // counter reads zero again
  EXPECT_EQ(table.observe(id).ref_index, 1u);   // ref mapping survives
}

TEST(IdTable, GrowthPreservesReferenceMappings) {
  IdTable table;
  const core::Trial ref = cbr_trial(16, 10);
  table.rebuild(ref);
  // Insert far more stream-side ids than the initial capacity holds.
  for (std::uint64_t i = 0; i < 4096; ++i) {
    table.observe(core::PacketId{1, i});
  }
  for (std::uint32_t j = 0; j < ref.size(); ++j) {
    ASSERT_EQ(table.ref_index_of(ref[j].id), j) << "ref position " << j;
  }
  // Occurrence counters also survive the rehash.
  EXPECT_EQ(table.observe(core::PacketId{1, 5}).occurrence, 1u);
}

// ---- Closed-form synthetic streams -------------------------------------

TEST(StreamMonitor, IdenticalStreamIsPerfectlyConsistent) {
  StreamMonitor mon(offline_config());
  const core::Trial a = cbr_trial(64, 1000);
  mon.set_reference(a);
  feed(mon, a);
  mon.finalize();

  ASSERT_EQ(mon.windows().size(), 1u);
  const WindowRecord& w = mon.windows().front();
  EXPECT_EQ(w.metrics.uniqueness, 0.0);
  EXPECT_EQ(w.metrics.ordering, 0.0);
  EXPECT_EQ(w.metrics.latency, 0.0);
  EXPECT_EQ(w.metrics.iat, 0.0);
  EXPECT_EQ(w.metrics.kappa, 1.0);
  EXPECT_EQ(w.missing, 0u);
  EXPECT_EQ(w.extra, 0u);
  EXPECT_EQ(w.moved, 0u);
  EXPECT_EQ(w.kappa_running, 1.0);

  ASSERT_EQ(mon.streams().size(), 1u);
  EXPECT_EQ(mon.streams().front().metrics.kappa, 1.0);
  EXPECT_TRUE(mon.divergence().empty());
  EXPECT_EQ(mon.matched(), 64u);
}

TEST(StreamMonitor, ConstantTimeShiftIsInvisible) {
  // Windows are rebased to their own first packet, so a rigid shift of
  // the whole stream changes nothing (same as the offline L and I).
  StreamMonitor mon(offline_config());
  const core::Trial a = cbr_trial(32, 500);
  mon.set_reference(a);
  feed(mon, cbr_trial(32, 500, /*start=*/987654));
  mon.finalize();
  ASSERT_EQ(mon.windows().size(), 1u);
  EXPECT_EQ(mon.windows().front().metrics.kappa, 1.0);
  EXPECT_EQ(mon.streams().front().metrics.kappa, 1.0);
}

TEST(StreamMonitor, DroppedPacketUniquenessClosedForm) {
  // A = 10 packets, B dropped one. The stream finale is the offline
  // Eq. 1: U = 1 - 2*9/(10+9) = 1/19. The (single) window pairs only
  // the first 9 reference packets, so its closed form is
  // U = 1 - 2*8/(9+9) = 1/9 (8 common: id 10 pairs in, id 5 is gone).
  StreamMonitor mon(offline_config());
  const core::Trial a = cbr_trial(10, 100);
  std::vector<core::TrialPacket> dropped;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i == 4) continue;
    dropped.push_back(a[i]);
  }
  mon.set_reference(a);
  feed(mon, core::Trial(std::move(dropped)));
  mon.finalize();

  ASSERT_EQ(mon.streams().size(), 1u);
  const StreamResult& s = mon.streams().front();
  EXPECT_NEAR(s.metrics.uniqueness, 1.0 / 19.0, 1e-12);
  EXPECT_EQ(s.missing, 1u);
  EXPECT_EQ(s.extra, 0u);

  ASSERT_EQ(mon.windows().size(), 1u);
  const WindowRecord& w = mon.windows().front();
  EXPECT_EQ(w.a_end - w.a_begin, 9u);
  EXPECT_EQ(w.common, 8u);
  EXPECT_NEAR(w.metrics.uniqueness, 1.0 / 9.0, 1e-12);
  EXPECT_EQ(w.missing, 1u);  // id 5, absent from the window
  EXPECT_EQ(w.extra, 1u);    // id 10, outside the paired A slice
}

TEST(StreamMonitor, AdjacentSwapOrderingClosedForm) {
  // One move of distance 1 over the max sum m(m+1)/2 = 10 -> O = 1/10
  // (the paper's worked example, here observed live).
  StreamMonitor mon(offline_config());
  mon.set_reference(cbr_trial(4, 100));
  feed(mon, make_trial({1, 3, 2, 4}, {0, 100, 200, 300}));
  mon.finalize();

  ASSERT_EQ(mon.windows().size(), 1u);
  EXPECT_NEAR(mon.windows().front().metrics.ordering, 1.0 / 10.0, 1e-12);
  EXPECT_NEAR(mon.streams().front().metrics.ordering, 1.0 / 10.0, 1e-12);
}

TEST(StreamMonitor, LatencyStraddleClosedForm) {
  // Section 3 worked example: the common packet arrives 9 ns after the
  // start of A and 8 ns after the start of B -> L = 1/18.
  StreamMonitor mon(offline_config());
  mon.set_reference(make_trial({1, 2}, {0, 9}));
  feed(mon, make_trial({1, 2}, {0, 8}));
  mon.finalize();
  ASSERT_EQ(mon.windows().size(), 1u);
  EXPECT_NEAR(mon.windows().front().metrics.latency, 1.0 / 18.0, 1e-12);
}

TEST(StreamMonitor, DuplicateRawIdsAreOccurrenceTagged) {
  // The same raw id three times in both trials matches positionally
  // (occurrence tagging), so the stream is perfectly consistent.
  StreamMonitor mon(offline_config());
  mon.set_reference(make_trial({7, 7, 7, 8}, {0, 10, 20, 30}));
  feed(mon, make_trial({7, 7, 7, 8}, {0, 10, 20, 30}));
  mon.finalize();
  EXPECT_EQ(mon.matched(), 4u);
  ASSERT_EQ(mon.windows().size(), 1u);
  EXPECT_EQ(mon.windows().front().metrics.kappa, 1.0);
}

// ---- Full-trial window == offline Eq. 5 (acceptance) -------------------

TEST(StreamMonitor, FullTrialWindowReproducesOfflineKappa) {
  // A single window covering the whole (jittered, reordered, lossy)
  // stream must reproduce core::compare_trials within 1e-9 on every
  // component. Extras are injected so nb >= na and the window pairs the
  // complete reference.
  const core::Trial a = cbr_trial(512, 1000);
  core::Trial b = perturb(a, /*seed=*/2025);
  for (std::uint64_t i = 0; i < 16; ++i) {  // alien extras, in time order
    b.push_back(core::TrialPacket{core::PacketId{3, i},
                                  b.last_time() + 500 + 10 * i});
  }
  ASSERT_GE(b.size(), a.size());

  StreamMonitor mon(offline_config());
  mon.set_reference(a);
  feed(mon, b);
  mon.finalize();

  // The monitor rebases every slice to its own first packet; mirror that
  // for the offline call (the L straddle mixes the two trials' absolute
  // times, so a rigid shift of B is not invisible to the denominator).
  std::vector<core::TrialPacket> rebased(b.packets());
  for (auto& p : rebased) p.time -= b.first_time();
  core::Trial b_tagged{std::move(rebased)};
  b_tagged.make_occurrences_unique();
  const core::ComparisonResult offline = core::compare_trials(a, b_tagged);
  ASSERT_EQ(mon.windows().size(), 1u);
  const WindowRecord& w = mon.windows().front();
  EXPECT_NEAR(w.metrics.uniqueness, offline.metrics.uniqueness, 1e-9);
  EXPECT_NEAR(w.metrics.ordering, offline.metrics.ordering, 1e-9);
  EXPECT_NEAR(w.metrics.latency, offline.metrics.latency, 1e-9);
  EXPECT_NEAR(w.metrics.iat, offline.metrics.iat, 1e-9);
  EXPECT_NEAR(w.metrics.kappa, offline.metrics.kappa, 1e-9);
  EXPECT_EQ(w.common, offline.common);
  EXPECT_EQ(w.lcs_length, offline.lcs_length);

  // The stream finale runs the identical computation.
  const StreamResult& s = mon.streams().front();
  EXPECT_NEAR(s.metrics.kappa, offline.metrics.kappa, 1e-9);
  EXPECT_EQ(s.common, offline.common);
  EXPECT_EQ(s.moved, offline.moved);
}

// ---- Windowing and boundary drift --------------------------------------

TEST(StreamMonitor, WindowBoundariesAndDriftAttribution) {
  // window_packets = 4 over an 8-packet stream where id 4 drifts into
  // the second window: it reads as missing in window 0 and extra in
  // window 1 — the boundary-drift signature documented in MONITOR.md.
  StreamMonitor mon(offline_config(/*window_packets=*/4));
  const core::Trial a = cbr_trial(8, 100);
  mon.set_reference(a);
  feed(mon, make_trial({1, 2, 3, 5, 4, 6, 7, 8},
                       {0, 100, 200, 300, 400, 500, 600, 700}));
  mon.finalize();

  ASSERT_EQ(mon.windows().size(), 2u);
  const WindowRecord& w0 = mon.windows()[0];
  const WindowRecord& w1 = mon.windows()[1];
  EXPECT_EQ(w0.b_begin, 0u);
  EXPECT_EQ(w0.b_end, 4u);
  EXPECT_EQ(w0.a_begin, 0u);
  EXPECT_EQ(w0.a_end, 4u);
  EXPECT_EQ(w1.b_begin, 4u);
  EXPECT_EQ(w1.b_end, 8u);
  EXPECT_EQ(w0.missing, 1u);  // id 4 not in window 0
  EXPECT_EQ(w0.extra, 1u);    // id 5 ahead of its slice
  EXPECT_EQ(w1.missing, 1u);  // id 5 already consumed
  EXPECT_EQ(w1.extra, 1u);    // id 4, late

  bool missing4 = false;
  bool extra4 = false;
  for (const DivergenceRecord& r : mon.divergence()) {
    if (r.id == core::PacketId{0, 4} &&
        r.kind == DivergenceRecord::Kind::kMissing && r.window == 0) {
      missing4 = true;
      EXPECT_EQ(r.index_a, 3);
      EXPECT_EQ(r.index_b, -1);
    }
    if (r.id == core::PacketId{0, 4} &&
        r.kind == DivergenceRecord::Kind::kExtra && r.window == 1) {
      extra4 = true;
      EXPECT_EQ(r.index_b, 4);
      EXPECT_EQ(r.index_a, -1);
    }
  }
  EXPECT_TRUE(missing4);
  EXPECT_TRUE(extra4);

  // The stream finale sees the whole trial, where the drift is only a
  // local reorder: no missing/extra at all.
  EXPECT_EQ(mon.streams().front().missing, 0u);
  EXPECT_EQ(mon.streams().front().extra, 0u);
}

TEST(StreamMonitor, MovedAttributionAndTopKLimit) {
  StreamMonitor cfg_full(offline_config(1u << 20, /*top_k=*/16));
  cfg_full.set_reference(cbr_trial(6, 100));
  feed(cfg_full, make_trial({2, 1, 4, 3, 6, 5},
                            {0, 100, 200, 300, 400, 500}));
  cfg_full.finalize();
  std::size_t moved = 0;
  for (const DivergenceRecord& r : cfg_full.divergence()) {
    if (r.kind == DivergenceRecord::Kind::kMoved) {
      ++moved;
      EXPECT_EQ(std::abs(r.move), 1);
      EXPECT_GE(r.index_b, 0);
    }
  }
  EXPECT_GE(moved, 3u);  // three adjacent swaps, at least one move each

  // top_k = 1 keeps a single moved record per window.
  StreamMonitor cfg_k1(offline_config(1u << 20, /*top_k=*/1));
  cfg_k1.set_reference(cbr_trial(6, 100));
  feed(cfg_k1, make_trial({2, 1, 4, 3, 6, 5}, {0, 100, 200, 300, 400, 500}));
  cfg_k1.finalize();
  moved = 0;
  for (const DivergenceRecord& r : cfg_k1.divergence()) {
    if (r.kind == DivergenceRecord::Kind::kMoved) ++moved;
  }
  EXPECT_EQ(moved, 1u);

  // top_k = 0 disables attribution entirely.
  StreamMonitor cfg_k0(offline_config(1u << 20, /*top_k=*/0));
  cfg_k0.set_reference(cbr_trial(6, 100));
  feed(cfg_k0, make_trial({2, 1, 4, 3, 6, 5}, {0, 100, 200, 300, 400, 500}));
  cfg_k0.finalize();
  EXPECT_TRUE(cfg_k0.divergence().empty());
}

TEST(StreamMonitor, RunningEstimateTracksExactComponents) {
  // U, L, I in the running estimate are exact; on a stream whose only
  // defect is one dropped packet, the estimate at the final window must
  // agree with the whole-trial U and keep O/L/I at zero.
  StreamMonitor mon(offline_config(1u << 20));
  const core::Trial a = cbr_trial(20, 100);
  std::vector<core::TrialPacket> b;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i != 10) b.push_back(a[i]);
  }
  mon.set_reference(a);
  feed(mon, core::Trial(std::move(b)));
  mon.finalize();
  const RunningEstimate& r = mon.running();
  // 19 B packets, 19 matched against a 20-packet reference.
  EXPECT_NEAR(r.uniqueness, 1.0 - 2.0 * 19.0 / 39.0, 1e-12);
  EXPECT_EQ(r.ordering, 0.0);
  EXPECT_EQ(r.lcs_length, 19u);
  EXPECT_GT(r.kappa, 0.9);
}

TEST(StreamMonitor, ReferenceFromFirstStream) {
  // Default config: the first stream becomes A and emits no windows;
  // the second stream is monitored against it.
  MonitorConfig cfg;
  cfg.window_packets = 1u << 20;
  StreamMonitor mon(cfg);
  const core::Trial a = cbr_trial(16, 250);
  feed(mon, a, "run-0");
  feed(mon, a, "run-1");  // closing run-0 installs it as the reference
  EXPECT_TRUE(mon.has_reference());
  mon.finalize();
  ASSERT_EQ(mon.streams().size(), 1u);
  EXPECT_EQ(mon.streams().front().name, "run-1");
  EXPECT_EQ(mon.streams().front().metrics.kappa, 1.0);
  ASSERT_EQ(mon.windows().size(), 1u);
  EXPECT_EQ(mon.windows().front().stream_name, "run-1");
}

// ---- Async mode --------------------------------------------------------

TEST(StreamMonitor, AsyncProducesIdenticalOutputs) {
  // The worker consumes the exact same item sequence, so every output —
  // windows, stream finales, divergence records, and both serialized
  // artifacts — must be byte-identical to the sync run.
  const core::Trial a = cbr_trial(600, 1000);
  const core::Trial b = perturb(a, /*seed=*/7, /*drop_every=*/41,
                                /*swap_every=*/7, /*jitter=*/120);

  MonitorConfig sync_cfg = offline_config(/*window_packets=*/128);
  MonitorConfig async_cfg = sync_cfg;
  async_cfg.async = true;
  async_cfg.ring_capacity = 64;  // force backpressure wraparounds

  StreamMonitor sync_mon(sync_cfg);
  sync_mon.set_reference(a);
  feed(sync_mon, b, "run");
  sync_mon.finalize();

  StreamMonitor async_mon(async_cfg);
  async_mon.set_reference(a);
  feed(async_mon, b, "run");
  async_mon.finalize();

  ASSERT_EQ(sync_mon.windows().size(), async_mon.windows().size());
  for (std::size_t i = 0; i < sync_mon.windows().size(); ++i) {
    const WindowRecord& ws = sync_mon.windows()[i];
    const WindowRecord& wa = async_mon.windows()[i];
    EXPECT_EQ(ws.metrics.kappa, wa.metrics.kappa) << "window " << i;
    EXPECT_EQ(ws.kappa_running, wa.kappa_running) << "window " << i;
    EXPECT_EQ(ws.common, wa.common);
    EXPECT_EQ(ws.moved, wa.moved);
    EXPECT_EQ(ws.missing, wa.missing);
    EXPECT_EQ(ws.extra, wa.extra);
  }
  ASSERT_EQ(sync_mon.divergence().size(), async_mon.divergence().size());
  EXPECT_EQ(sync_mon.observed(), async_mon.observed());
  EXPECT_EQ(sync_mon.matched(), async_mon.matched());

  std::ostringstream sync_jsonl, async_jsonl, sync_csv, async_csv;
  write_divergence_jsonl(sync_mon, sync_jsonl);
  write_divergence_jsonl(async_mon, async_jsonl);
  write_windows_csv(sync_mon, sync_csv);
  write_windows_csv(async_mon, async_csv);
  EXPECT_EQ(sync_jsonl.str(), async_jsonl.str());
  EXPECT_EQ(sync_csv.str(), async_csv.str());
}

TEST(StreamMonitor, AsyncMultiStreamWithImplicitReference) {
  MonitorConfig cfg;
  cfg.window_packets = 64;
  cfg.async = true;
  StreamMonitor mon(cfg);
  const core::Trial a = cbr_trial(200, 500);
  feed(mon, a, "run-0");  // becomes the reference
  feed(mon, perturb(a, 3), "run-1");
  feed(mon, perturb(a, 4), "run-2");
  mon.finalize();
  ASSERT_EQ(mon.streams().size(), 2u);
  EXPECT_EQ(mon.streams()[0].name, "run-1");
  EXPECT_EQ(mon.streams()[1].name, "run-2");
  EXPECT_GT(mon.windows().size(), 2u);
}

// ---- Serialization determinism -----------------------------------------

TEST(Divergence, SerializationIsByteDeterministic) {
  // Two monitors fed the identical sequence serialize byte-identically
  // (fixed key order, %.17g doubles) — the in-process half of the
  // divergence.jsonl determinism regression.
  const core::Trial a = cbr_trial(300, 1000);
  const core::Trial b = perturb(a, 99);
  std::string first;
  for (int round = 0; round < 2; ++round) {
    StreamMonitor mon(offline_config(/*window_packets=*/64));
    mon.set_reference(a);
    feed(mon, b, "run");
    mon.finalize();
    std::ostringstream jsonl, csv;
    write_divergence_jsonl(mon, jsonl);
    write_windows_csv(mon, csv);
    const std::string combined = jsonl.str() + "\n--\n" + csv.str();
    if (round == 0) {
      first = combined;
      EXPECT_FALSE(jsonl.str().empty());
    } else {
      EXPECT_EQ(combined, first);
    }
  }
}

TEST(Divergence, JsonlSchemaFields) {
  StreamMonitor mon(offline_config());
  mon.set_reference(cbr_trial(4, 100));
  feed(mon, make_trial({1, 3, 2, 4}, {0, 100, 200, 300}), "run");
  mon.finalize();
  std::ostringstream out;
  write_divergence_jsonl(mon, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"stream\":\"run\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"moved\""), std::string::npos);
  EXPECT_NE(text.find("\"id_lo\""), std::string::npos);
  EXPECT_NE(text.find("\"move\""), std::string::npos);
  EXPECT_NE(text.find("\"t_ns\""), std::string::npos);
}

}  // namespace
}  // namespace choir::monitor
