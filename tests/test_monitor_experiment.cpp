// Integration tests for the monitor's experiment wiring: the recorder
// feeds the monitor through the null-check hook, stream finales agree
// with the offline comparisons, enabling the monitor does not perturb
// the simulation, and two identical monitored runs produce byte-
// identical divergence.jsonl artifacts (the determinism regression).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "monitor/monitor.hpp"
#include "testbed/experiment.hpp"
#include "testbed/presets.hpp"

namespace choir::testbed {
namespace {

namespace fs = std::filesystem;

ExperimentConfig small_config() {
  ExperimentConfig config;
  config.env = local_single();
  config.packets = 600;
  config.runs = 3;
  config.seed = 424242;
  config.collect_series = false;
  return config;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(MonitorExperiment, RecorderFeedsMonitorAndFinalesMatchOffline) {
  ExperimentConfig config = small_config();
  config.monitor.enabled = true;
  config.monitor.window_packets = 128;
  const ExperimentResult result = run_experiment(config);

  ASSERT_NE(result.monitor, nullptr);
  const auto& mon = *result.monitor;
  // Run 0 became the reference; runs 1..n-1 are monitored streams.
  ASSERT_EQ(mon.streams().size(), static_cast<std::size_t>(config.runs - 1));
  ASSERT_EQ(result.comparisons.size(),
            static_cast<std::size_t>(config.runs - 1));
  EXPECT_GT(mon.observed(), 0u);
  EXPECT_FALSE(mon.windows().empty());

  // The exact finale of each stream is the offline Eq. 5 on the same
  // packets the capture path recorded.
  for (std::size_t i = 0; i < mon.streams().size(); ++i) {
    const auto& stream = mon.streams()[i];
    const auto& offline = result.comparisons[i];
    EXPECT_NEAR(stream.metrics.kappa, offline.metrics.kappa, 1e-9) << i;
    EXPECT_NEAR(stream.metrics.uniqueness, offline.metrics.uniqueness, 1e-9);
    EXPECT_NEAR(stream.metrics.ordering, offline.metrics.ordering, 1e-9);
    EXPECT_NEAR(stream.metrics.latency, offline.metrics.latency, 1e-9);
    EXPECT_NEAR(stream.metrics.iat, offline.metrics.iat, 1e-9);
    EXPECT_EQ(stream.common, offline.common);
  }
}

TEST(MonitorExperiment, MonitorDoesNotPerturbTheSimulation) {
  // A pure observer: the seeded run must be bit-identical with the
  // monitor on or off.
  ExperimentConfig off = small_config();
  ExperimentConfig on = off;
  on.monitor.enabled = true;
  on.monitor.window_packets = 64;
  const ExperimentResult r_off = run_experiment(off);
  const ExperimentResult r_on = run_experiment(on);
  EXPECT_EQ(std::memcmp(&r_off.mean, &r_on.mean, sizeof(r_off.mean)), 0);
  EXPECT_EQ(r_off.recorded_packets, r_on.recorded_packets);
  EXPECT_EQ(r_off.capture_sizes, r_on.capture_sizes);
}

TEST(MonitorExperiment, DivergenceArtifactsAreByteDeterministic) {
  // Two identical monitored runs write byte-identical divergence.jsonl
  // and windows.csv — the ISSUE's determinism regression.
  const fs::path base =
      fs::temp_directory_path() / "choir_monitor_determinism";
  fs::remove_all(base);
  ExperimentConfig config = small_config();
  config.env = chaos_single(0.3);  // adversity so divergence is non-empty
  config.monitor.enabled = true;
  config.monitor.window_packets = 64;

  std::string jsonl[2];
  std::string csv[2];
  for (int round = 0; round < 2; ++round) {
    const fs::path dir = base / ("run" + std::to_string(round));
    config.monitor.dir = dir.string();
    (void)run_experiment(config);
    ASSERT_TRUE(fs::exists(dir / "divergence.jsonl")) << dir;
    ASSERT_TRUE(fs::exists(dir / "windows.csv")) << dir;
    jsonl[round] = slurp(dir / "divergence.jsonl");
    csv[round] = slurp(dir / "windows.csv");
  }
  EXPECT_FALSE(csv[0].empty());
  EXPECT_EQ(jsonl[0], jsonl[1]);
  EXPECT_EQ(csv[0], csv[1]);
  fs::remove_all(base);
}

TEST(MonitorExperiment, TelemetryCountersFlushAtFinalize) {
  ExperimentConfig config = small_config();
  config.monitor.enabled = true;
  config.monitor.window_packets = 128;
  config.telemetry.enabled = true;
  const ExperimentResult result = run_experiment(config);
  ASSERT_NE(result.telemetry_registry, nullptr);
  ASSERT_NE(result.monitor, nullptr);
  auto& registry = *result.telemetry_registry;
  EXPECT_EQ(registry.counter("monitor.observed").value(),
            result.monitor->observed());
  EXPECT_EQ(registry.counter("monitor.windows").value(),
            result.monitor->windows().size());
  EXPECT_EQ(registry.counter("monitor.streams").value(),
            result.monitor->streams().size());
}

TEST(MonitorExperiment, ProfilerCapturesPipelinePhases) {
  ExperimentConfig config = small_config();
  config.telemetry.enabled = true;
  config.telemetry.profile = true;
  config.monitor.enabled = true;
  const ExperimentResult result = run_experiment(config);
  ASSERT_NE(result.profile, nullptr);
  const auto& aggregates = result.profile->aggregates();
  // The three top-level phases always close exactly once per experiment.
  ASSERT_TRUE(aggregates.count("experiment.build"));
  ASSERT_TRUE(aggregates.count("experiment.run"));
  ASSERT_TRUE(aggregates.count("experiment.evaluate"));
  EXPECT_EQ(aggregates.at("experiment.run").count, 1u);
  // Hot-path spans fire per drain/pace step while the run phase is open.
  ASSERT_TRUE(aggregates.count("record.drain"));
  EXPECT_GT(aggregates.at("record.drain").count, 0u);
  // Without a profile session, no profiler is attached.
  ExperimentConfig plain = small_config();
  plain.telemetry.enabled = true;
  EXPECT_EQ(run_experiment(plain).profile, nullptr);
}

}  // namespace
}  // namespace choir::testbed
