#include "net/nic.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace choir::net {
namespace {

using test::SinkEndpoint;
using test::make_frame;

NicConfig quiet() {
  NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  cfg.dma_pull_base = 300;
  return cfg;
}

struct NicFixture : ::testing::Test {
  sim::EventQueue queue;
  SinkEndpoint sink;
  Link egress{queue, LinkConfig{0}};
  pktio::Mempool pool{128};

  NicFixture() { egress.connect(sink); }
};

TEST_F(NicFixture, TxBurstGoesThroughDmaAndWire) {
  PhysNic nic(queue, quiet(), Rng(1), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  pktio::Mbuf* burst[2] = {make_frame(pool, 1400, 1), make_frame(pool, 1400, 2)};
  queue.run_until(1000);
  EXPECT_EQ(vf.backend_tx(burst, 2), 2);
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 2u);
  // DMA pull at 1000+300, then 112 ns serialization each.
  EXPECT_EQ(sink.deliveries[0].wire_time, 1300 + 112);
  EXPECT_EQ(sink.deliveries[1].wire_time, 1300 + 224);
}

TEST_F(NicFixture, DmaPullIsFifoAcrossBursts) {
  NicConfig cfg = quiet();
  cfg.dma_pull_jitter_sigma_ns = 200.0;  // heavy jitter
  PhysNic nic(queue, cfg, Rng(2), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  // Submit many single-frame bursts close together; wire order must match
  // submission order despite jitter.
  for (int i = 0; i < 50; ++i) {
    queue.run_until(queue.now() + 10);
    pktio::Mbuf* one[1] = {make_frame(pool, 300, i)};
    vf.backend_tx(one, 1);
  }
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sink.deliveries[i].payload_token, i);
  }
}

TEST_F(NicFixture, PacedTxSkipsDmaJitter) {
  PhysNic nic(queue, quiet(), Rng(3), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  vf.tx_paced(make_frame(pool, 1400, 1), 5000);
  queue.run();
  EXPECT_EQ(sink.deliveries[0].wire_time, 5000 + 112);
}

TEST_F(NicFixture, RxRoutesByDestinationMac) {
  PhysNic nic(queue, quiet(), Rng(4), egress);
  Vf& vf1 = nic.add_vf(pktio::mac_for_node(10));
  Vf& vf2 = nic.add_vf(pktio::mac_for_node(20));
  nic.deliver(make_frame(pool, 1400, 1, /*src=*/1, /*dst=*/10), 100);
  nic.deliver(make_frame(pool, 1400, 2, 1, 20), 400);
  nic.deliver(make_frame(pool, 1400, 3, 1, 20), 700);
  queue.run();
  EXPECT_EQ(vf1.rx_pending(), 1u);
  EXPECT_EQ(vf2.rx_pending(), 2u);
  pktio::Mbuf* out[4];
  EXPECT_EQ(vf2.backend_rx(out, 4), 2);
  EXPECT_EQ(out[0]->frame.payload_token, 2u);
  pktio::Mempool::release(out[0]);
  pktio::Mempool::release(out[1]);
  EXPECT_EQ(vf1.backend_rx(out, 4), 1);
  pktio::Mempool::release(out[0]);
}

TEST_F(NicFixture, UnmatchedMacDropsWithoutPromiscuousVf) {
  PhysNic nic(queue, quiet(), Rng(5), egress);
  nic.add_vf(pktio::mac_for_node(10));
  nic.deliver(make_frame(pool, 1400, 1, 1, 99), 100);
  queue.run();
  EXPECT_EQ(nic.rx_drops(), 1u);
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST_F(NicFixture, PromiscuousVfCatchesUnmatched) {
  PhysNic nic(queue, quiet(), Rng(6), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(10), /*promiscuous=*/true);
  nic.deliver(make_frame(pool, 1400, 1, 1, 99), 100);
  queue.run();
  EXPECT_EQ(vf.rx_pending(), 1u);
  pktio::Mbuf* out[1];
  vf.backend_rx(out, 1);
  pktio::Mempool::release(out[0]);
}

TEST_F(NicFixture, RxTimestampAssigned) {
  PhysNic nic(queue, quiet(), Rng(7), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  nic.deliver(make_frame(pool, 1400, 1, 1, 2), 12345);
  queue.run();
  pktio::Mbuf* out[1];
  ASSERT_EQ(vf.backend_rx(out, 1), 1);
  EXPECT_EQ(out[0]->rx_timestamp, 12345);
  pktio::Mempool::release(out[0]);
}

TEST_F(NicFixture, RingOverflowCountsImissed) {
  NicConfig cfg = quiet();
  cfg.rx_ring_pkts = 4;
  PhysNic nic(queue, cfg, Rng(8), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  for (int i = 0; i < 10; ++i) {
    nic.deliver(make_frame(pool, 1400, i, 1, 2), 1000 + i * 280);
    queue.run();
  }
  EXPECT_EQ(vf.imissed(), 6u);
  EXPECT_EQ(vf.rx_pending(), 4u);
  pktio::Mbuf* out[8];
  const auto n = vf.backend_rx(out, 8);
  for (std::uint16_t i = 0; i < n; ++i) pktio::Mempool::release(out[i]);
}

TEST_F(NicFixture, RxWakeupFiresOnEmptyToNonEmpty) {
  PhysNic nic(queue, quiet(), Rng(9), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  int wakeups = 0;
  vf.set_rx_wakeup([&] { ++wakeups; });
  nic.deliver(make_frame(pool, 1400, 1, 1, 2), 100);
  nic.deliver(make_frame(pool, 1400, 2, 1, 2), 500);
  queue.run();
  EXPECT_EQ(wakeups, 1);  // second enqueue found a non-empty ring
  pktio::Mbuf* out[2];
  vf.backend_rx(out, 2);
  pktio::Mempool::release(out[0]);
  pktio::Mempool::release(out[1]);
  nic.deliver(make_frame(pool, 1400, 3, 1, 2), queue.now() + 100);
  queue.run();
  EXPECT_EQ(wakeups, 2);
  vf.backend_rx(out, 1);
  pktio::Mempool::release(out[0]);
}

TEST_F(NicFixture, SharedVfsContendOnOneWire) {
  PhysNic nic(queue, quiet(), Rng(10), egress);
  Vf& a = nic.add_vf(pktio::mac_for_node(1));
  Vf& b = nic.add_vf(pktio::mac_for_node(2));
  queue.run_until(100);
  pktio::Mbuf* ba[1] = {make_frame(pool, 1400, 10)};
  pktio::Mbuf* bb[1] = {make_frame(pool, 1400, 20)};
  a.backend_tx(ba, 1);
  b.backend_tx(bb, 1);
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 2u);
  // Both VFs share the physical serializer: frames are spaced by it.
  EXPECT_EQ(sink.deliveries[1].wire_time - sink.deliveries[0].wire_time, 112);
}

}  // namespace
}  // namespace choir::net
