#include "net/noise.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace choir::net {
namespace {

using test::SinkEndpoint;

NicConfig quiet() {
  NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  return cfg;
}

pktio::FlowAddress noise_flow() {
  pktio::FlowAddress f;
  f.src_mac = pktio::mac_for_node(5);
  f.dst_mac = pktio::mac_for_node(6);
  f.src_ip = pktio::ip_for_node(5);
  f.dst_ip = pktio::ip_for_node(6);
  f.src_port = 5201;
  f.dst_port = 5201;
  return f;
}

struct NoiseFixture : ::testing::Test {
  sim::EventQueue queue;
  SinkEndpoint sink;
  Link egress{queue, LinkConfig{0}};
  pktio::Mempool pool{16384};

  NoiseFixture() { egress.connect(sink); }
};

TEST_F(NoiseFixture, EmitsWithinRateEnvelope) {
  PhysNic nic(queue, quiet(), Rng(1), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(5));
  NoiseConfig cfg;
  cfg.min_rate = gbps(35);
  cfg.max_rate = gbps(50);
  NoiseSource noise(queue, vf, pool, noise_flow(), cfg, Rng(2));
  noise.run(0, milliseconds(20));
  queue.run();

  // Offered bytes over 20 ms must land in the envelope (loosely, since
  // the rate random-walks and bursts jitter).
  std::uint64_t bytes = 0;
  for (const auto& d : sink.deliveries) bytes += d.wire_len;
  const double rate = static_cast<double>(bytes) * 8.0 / 20e-3;
  EXPECT_GT(rate, gbps(20));
  EXPECT_LT(rate, gbps(65));
  EXPECT_GT(noise.frames_emitted(), 1000u);
}

TEST_F(NoiseFixture, RespectsStopTime) {
  PhysNic nic(queue, quiet(), Rng(3), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(5));
  NoiseSource noise(queue, vf, pool, noise_flow(), NoiseConfig{}, Rng(4));
  noise.run(milliseconds(1), milliseconds(2));
  queue.run();
  for (const auto& d : sink.deliveries) {
    EXPECT_LT(d.wire_time, milliseconds(3));
  }
  EXPECT_FALSE(sink.deliveries.empty());
}

TEST_F(NoiseFixture, RateStaysClamped) {
  PhysNic nic(queue, quiet(), Rng(5), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(5));
  NoiseConfig cfg;
  cfg.min_rate = gbps(35);
  cfg.max_rate = gbps(50);
  NoiseSource noise(queue, vf, pool, noise_flow(), cfg, Rng(6));
  noise.run(0, milliseconds(50));
  queue.run();
  EXPECT_GE(noise.current_rate(), cfg.min_rate);
  EXPECT_LE(noise.current_rate(), cfg.max_rate);
}

TEST_F(NoiseFixture, SurvivesPoolExhaustion) {
  PhysNic nic(queue, quiet(), Rng(7), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(5));
  pktio::Mempool tiny(8);
  NoiseSource noise(queue, vf, tiny, noise_flow(), NoiseConfig{}, Rng(8));
  noise.run(0, milliseconds(5));
  queue.run();  // must not throw or hang
  EXPECT_GT(noise.frames_emitted(), 0u);
}

TEST_F(NoiseFixture, FramesCarryNoiseAddressing) {
  PhysNic nic(queue, quiet(), Rng(9), egress);
  Vf& vf = nic.add_vf(pktio::mac_for_node(5));
  NoiseSource noise(queue, vf, pool, noise_flow(), NoiseConfig{}, Rng(10));
  noise.run(0, microseconds(50));
  queue.run();
  ASSERT_FALSE(sink.deliveries.empty());
  EXPECT_EQ(sink.deliveries[0].wire_len, NoiseConfig{}.frame_bytes);
}

}  // namespace
}  // namespace choir::net
