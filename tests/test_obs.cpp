// Group observability: flight-recorder ring semantics (wrap, sampling),
// trace-context packing, PTP rebase, timeline merging, the synthetic
// postmortem analyzer, and the zero-perturbation / byte-determinism
// contracts at the experiment level (obs on vs off bit-identical;
// merged artifacts byte-identical across --jobs values).
#include <gtest/gtest.h>

#include "analysis/postmortem.hpp"
#include "fault/fault_plan.hpp"
#include "obs/flight_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/group_trace.hpp"
#include "obs/postmortem.hpp"
#include "obs/trace_context.hpp"
#include "testbed/experiment.hpp"

namespace choir {
namespace {

obs::FlightEvent event_at(Ns t, obs::EventKind kind) {
  obs::FlightEvent e{};
  e.t_wall = t;
  e.kind = kind;
  return e;
}

TEST(FlightRecorder, WrapOverwritesOldestAndKeepsOrder) {
  obs::FlightRecorder ring(7, 8);
  for (int i = 0; i < 20; ++i) {
    obs::FlightEvent e = event_at(i * 10, obs::EventKind::kBeaconSend);
    e.a = i;
    ring.record(e);
  }
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.overwritten(), 12u);

  std::vector<obs::FlightEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Oldest surviving event is #12; sequence and payload stay aligned.
    EXPECT_EQ(out[i].a, static_cast<std::int64_t>(12 + i));
    EXPECT_EQ(out[i].seq, 12 + i);
    EXPECT_EQ(out[i].node, 7);
  }
}

TEST(FlightRecorder, SnapshotBeforeWrapIsOldestFirst) {
  obs::FlightRecorder ring(1, 16);
  for (int i = 0; i < 3; ++i) {
    ring.record(event_at(100 + i, obs::EventKind::kPtpSync));
  }
  std::vector<obs::FlightEvent> out;
  ring.snapshot(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].t_wall, 100);
  EXPECT_EQ(out[2].t_wall, 102);
}

TEST(FlightRecorder, RoundSamplingGatesHighVolumeEvents) {
  obs::FlightRecorder ring(1, 32, /*sample_every=*/3);
  // Rounds 0, 3, 6... are sampled; the record phase (round < 0) always is.
  EXPECT_TRUE(ring.round_sampled(0));
  EXPECT_FALSE(ring.round_sampled(1));
  EXPECT_FALSE(ring.round_sampled(2));
  EXPECT_TRUE(ring.round_sampled(3));
  EXPECT_TRUE(ring.round_sampled(-1));

  for (int round = 0; round < 6; ++round) {
    obs::FlightEvent e = event_at(round, obs::EventKind::kBeaconRecv);
    e.round = round;
    ring.record_sampled(e);
  }
  EXPECT_EQ(ring.size(), 2u);  // rounds 0 and 3

  obs::FlightEvent record_phase = event_at(7, obs::EventKind::kControlSend);
  record_phase.round = -1;
  ring.record_sampled(record_phase);
  EXPECT_EQ(ring.size(), 3u);
}

TEST(TraceContext, PackUnpackRoundTrips) {
  const obs::TraceContext ctx{0xdeadbeefu, 0x00c0ffeeu};
  const obs::TraceContext back = obs::unpack_trace(obs::pack_trace(ctx));
  EXPECT_EQ(back.trace, ctx.trace);
  EXPECT_EQ(back.span, ctx.span);
  // The zero word is the untraced sentinel legacy encoders emit.
  const obs::TraceContext none = obs::unpack_trace(0);
  EXPECT_EQ(none.trace, 0u);
  EXPECT_EQ(none.span, 0u);
}

TEST(TraceContext, RoundTraceIdsInvertAndAvoidReservedIds) {
  EXPECT_EQ(obs::round_trace_id(0), 2u);  // 0 = untraced, 1 = record phase
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(obs::round_of_trace(obs::round_trace_id(round)), round);
  }
  EXPECT_EQ(obs::round_of_trace(obs::kRecordTraceId), -1);
  EXPECT_EQ(obs::round_of_trace(0), -1);
}

TEST(TraceContext, SpanAllocatorEmbedsNodeAndNeverCollides) {
  obs::SpanAllocator a(3), b(11);
  const std::uint32_t sa = a.next();
  const std::uint32_t sb = b.next();
  EXPECT_EQ(obs::span_node(sa), 3);
  EXPECT_EQ(obs::span_node(sb), 11);
  EXPECT_NE(sa, sb);
  EXPECT_NE(a.next(), sa);  // per-node sequence advances
}

TEST(FlightLog, RebaseUsesLatestCorrectionAtOrBefore) {
  obs::FlightLog log(16);
  log.add_node(11, "repl1");
  log.note_sync(11, 100, 10.0);   // at believed t=100 the clock was +10ns
  log.note_sync(11, 200, -5.0);

  EXPECT_DOUBLE_EQ(log.rebase(11, 50), 40.0);    // before first: use first
  EXPECT_DOUBLE_EQ(log.rebase(11, 150), 140.0);  // between: first applies
  EXPECT_DOUBLE_EQ(log.rebase(11, 300), 305.0);  // after second: -(-5)
  // A node with no history rebases to its own clock.
  log.add_node(12, "repl2");
  EXPECT_DOUBLE_EQ(log.rebase(12, 777), 777.0);
}

TEST(FlightLog, AddNodeIsIdempotentAndPointersAreStable) {
  obs::FlightLog log(8);
  obs::FlightRecorder* first = &log.add_node(3, "coordinator");
  // Later registrations must not invalidate the earlier hook pointer —
  // producers hold it for the whole run.
  for (std::uint16_t id = 10; id < 20; ++id) {
    log.add_node(id, "repl");
  }
  EXPECT_EQ(first, &log.add_node(3, "renamed"));
  EXPECT_EQ(log.label(3), "coordinator");  // first label wins
  first->record(event_at(1, obs::EventKind::kRoundStart));
  EXPECT_EQ(log.node(3)->size(), 1u);
}

TEST(FlightLog, MergeTimelineOrdersAcrossNodesByRebasedTime) {
  obs::FlightLog log(16);
  log.add_node(3, "coordinator");
  log.add_node(11, "repl1");
  // repl1's clock runs 1000ns ahead, so its believed t=1500 event truly
  // happened at 500 — before the coordinator's t=1000 event.
  log.note_sync(11, 0, 1000.0);
  log.node(3)->record(event_at(1000, obs::EventKind::kRoundStart));
  log.node(11)->record(event_at(1500, obs::EventKind::kReplayStart));

  const obs::GroupTimeline timeline = obs::merge_timeline(log);
  // note_sync also records a kPtpSync event on repl1's ring at t=0.
  ASSERT_EQ(timeline.events.size(), 3u);
  EXPECT_EQ(timeline.events[0].e.kind, obs::EventKind::kPtpSync);
  EXPECT_EQ(timeline.events[1].e.kind, obs::EventKind::kReplayStart);
  EXPECT_DOUBLE_EQ(timeline.events[1].t_est, 500.0);
  EXPECT_EQ(timeline.events[2].e.kind, obs::EventKind::kRoundStart);
}

/// A hand-built incident: a NIC stall fault on repl1 (node 11), the
/// coordinator sees it straggle, then commands a resync.
obs::FlightLog synthetic_stall_log() {
  obs::FlightLog log(32);
  log.add_node(3, "coordinator");
  log.add_node(11, "repl1");
  const std::uint16_t pid = log.intern_point("nic.repl1-out", 11);

  obs::FlightEvent fault = event_at(1000, obs::EventKind::kFaultActive);
  fault.code = static_cast<std::uint16_t>(fault::FaultKind::kNicTxStall);
  fault.b = pid;
  log.node(11)->record(fault);

  obs::FlightEvent straggle = event_at(2000, obs::EventKind::kStraggle);
  straggle.peer = 11;
  straggle.round = 1;
  straggle.a = 400'000;  // lag behind the horizon, ns
  log.node(3)->record(straggle);

  obs::FlightEvent resync = event_at(3000, obs::EventKind::kResyncCmd);
  resync.peer = 11;
  resync.round = 1;
  log.node(3)->record(resync);
  return log;
}

TEST(Postmortem, SyntheticStallBlamesFaultOnStragglingNode) {
  const obs::FlightLog log = synthetic_stall_log();
  const obs::GroupTimeline timeline = obs::merge_timeline(log);
  const obs::PostmortemReport report = obs::analyze_timeline(log, timeline);

  ASSERT_EQ(report.outcomes.size(), 1u);
  const obs::Outcome& out = report.outcomes[0];
  EXPECT_EQ(out.kind, obs::OutcomeKind::kResync);
  EXPECT_EQ(out.node, 11);
  EXPECT_EQ(out.round, 1);
  EXPECT_NE(out.root_cause.find("nic_tx_stall"), std::string::npos);
  EXPECT_NE(out.root_cause.find("nic.repl1-out"), std::string::npos);
  EXPECT_NE(out.root_cause.find("node 11"), std::string::npos);
  // Chain runs root-first: fault, straggle, then the resync outcome.
  ASSERT_GE(out.chain.size(), 3u);
  EXPECT_EQ(timeline.events[out.chain.front().event].e.kind,
            obs::EventKind::kFaultActive);
  EXPECT_EQ(out.chain.back().event, out.event);
  EXPECT_LE(out.blame_from_ns, out.blame_to_ns);
  EXPECT_FALSE(report.kappa_gate_failed);
}

TEST(Postmortem, ResyncRetryStormCoalescesToOneIncident) {
  obs::FlightLog log = synthetic_stall_log();
  for (int i = 0; i < 4; ++i) {  // retries of the same (member, round)
    obs::FlightEvent retry = event_at(3500 + i, obs::EventKind::kResyncCmd);
    retry.peer = 11;
    retry.round = 1;
    log.node(3)->record(retry);
  }
  const obs::GroupTimeline timeline = obs::merge_timeline(log);
  const obs::PostmortemReport report = obs::analyze_timeline(log, timeline);
  EXPECT_EQ(report.outcomes.size(), 1u);
}

TEST(Postmortem, KappaGateFlagsFailingRoundAndBorrowsBlame) {
  obs::FlightLog log = synthetic_stall_log();
  obs::FlightEvent kappa = event_at(5000, obs::EventKind::kKappaRound);
  kappa.round = 1;
  kappa.f = 0.42;
  log.node(3)->record(kappa);

  obs::PostmortemOptions opt;
  opt.kappa_gate = 0.9;
  const obs::GroupTimeline timeline = obs::merge_timeline(log);
  const obs::PostmortemReport report =
      obs::analyze_timeline(log, timeline, opt);

  EXPECT_TRUE(report.kappa_gate_failed);
  ASSERT_EQ(report.outcomes.size(), 2u);  // resync + gated round
  const obs::Outcome& gate = report.outcomes[1];
  EXPECT_EQ(gate.kind, obs::OutcomeKind::kKappaGate);
  EXPECT_EQ(gate.node, 11);  // blame borrowed from the round's resync
  // Below-gate rounds are incidents; a healthy kappa is not.
  obs::PostmortemOptions lax;
  lax.kappa_gate = 0.1;
  EXPECT_FALSE(
      obs::analyze_timeline(log, timeline, lax).kappa_gate_failed);
}

TEST(Postmortem, BarrierResidualPastGateIsClockAnomaly) {
  obs::FlightLog log(16);
  log.add_node(3, "coordinator");
  obs::FlightEvent sample = event_at(1000, obs::EventKind::kBarrierSample);
  sample.peer = 12;
  sample.round = 0;
  sample.f = 50'000.0;  // ns, past the 10us default gate
  log.node(3)->record(sample);

  const obs::GroupTimeline timeline = obs::merge_timeline(log);
  const obs::PostmortemReport report = obs::analyze_timeline(log, timeline);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].kind, obs::OutcomeKind::kClockAnomaly);
  EXPECT_EQ(report.outcomes[0].node, 12);
}

TEST(GroupTrace, RenderersAreByteDeterministic) {
  const obs::FlightLog a = synthetic_stall_log();
  const obs::FlightLog b = synthetic_stall_log();
  const obs::GroupTimeline ta = obs::merge_timeline(a);
  const obs::GroupTimeline tb = obs::merge_timeline(b);
  EXPECT_EQ(obs::render_group_trace(a, ta), obs::render_group_trace(b, tb));
  EXPECT_EQ(obs::render_events_jsonl(a, ta),
            obs::render_events_jsonl(b, tb));
  const obs::PostmortemReport ra = obs::analyze_timeline(a, ta);
  const obs::PostmortemReport rb = obs::analyze_timeline(b, tb);
  EXPECT_EQ(analysis::render_postmortem_json(a, ta, ra),
            analysis::render_postmortem_json(b, tb, rb));
  // The human report names the incident the same way.
  const std::string text = analysis::render_postmortem(a, ta, ra);
  EXPECT_NE(text.find("nic_tx_stall"), std::string::npos);
}

testbed::ExperimentConfig small_group_config() {
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_single();
  cfg.env.replayers = 3;
  cfg.env.replayer_sync_fraction_of_run = 0.0;
  cfg.env.replayer_sync_sigma_ns = 25.0;
  cfg.packets = 2000;
  cfg.runs = 2;
  cfg.seed = 11;
  cfg.collect_series = false;
  cfg.group.enabled = true;
  return cfg;
}

TEST(ObsExperiment, RecordingIsZeroPerturbation) {
  // The flight recorder must observe without steering: the same seeded
  // run is bit-identical with recording on or off.
  testbed::ExperimentConfig cfg = small_group_config();
  const auto off = testbed::run_experiment(cfg);
  cfg.obs.enabled = true;
  const auto on = testbed::run_experiment(cfg);

  EXPECT_EQ(off.mean.kappa, on.mean.kappa);
  EXPECT_EQ(off.mean.latency, on.mean.latency);
  EXPECT_EQ(off.mean.ordering, on.mean.ordering);
  EXPECT_EQ(off.capture_sizes, on.capture_sizes);
  EXPECT_EQ(off.recorded_packets, on.recorded_packets);
  EXPECT_EQ(off.group_stats.beacons_rx, on.group_stats.beacons_rx);
  ASSERT_NE(on.flight_log, nullptr);
  EXPECT_EQ(off.flight_log, nullptr);
}

TEST(ObsExperiment, FlightLogCoversCoordinatorAndEveryReplayer) {
  testbed::ExperimentConfig cfg = small_group_config();
  cfg.obs.enabled = true;
  const auto result = testbed::run_experiment(cfg);
  ASSERT_NE(result.flight_log, nullptr);
  const obs::FlightLog& log = *result.flight_log;
  ASSERT_EQ(log.node_ids().size(), 4u);  // coordinator + 3 replayers
  for (std::uint16_t id : log.node_ids()) {
    EXPECT_GT(log.node(id)->size(), 0u)
        << "node " << id << " recorded nothing";
  }
  // Every node's clock history is populated by the sync observer, so
  // the merger has residual evidence to rebase with.
  for (std::uint16_t id : log.node_ids()) {
    EXPECT_FALSE(log.clock_history(id).empty());
  }
  // Control-channel tracing reached the members: some events carry a
  // trace context.
  const obs::GroupTimeline timeline = obs::merge_timeline(log);
  std::size_t traced = 0;
  for (const auto& te : timeline.events) {
    if (te.e.trace != 0) ++traced;
  }
  EXPECT_GT(traced, 0u);
}

TEST(ObsExperiment, MergedArtifactsAreByteIdenticalAcrossEvalJobs) {
  testbed::ExperimentConfig cfg = small_group_config();
  cfg.obs.enabled = true;
  cfg.eval_jobs = 1;
  const auto seq = testbed::run_experiment(cfg);
  cfg.eval_jobs = 4;
  const auto par = testbed::run_experiment(cfg);
  ASSERT_NE(seq.flight_log, nullptr);
  ASSERT_NE(par.flight_log, nullptr);

  const obs::GroupTimeline ts = obs::merge_timeline(*seq.flight_log);
  const obs::GroupTimeline tp = obs::merge_timeline(*par.flight_log);
  EXPECT_EQ(obs::render_group_trace(*seq.flight_log, ts),
            obs::render_group_trace(*par.flight_log, tp));
  EXPECT_EQ(obs::render_events_jsonl(*seq.flight_log, ts),
            obs::render_events_jsonl(*par.flight_log, tp));
}

TEST(ObsExperiment, TraceSamplingThinsRoundEventsOnly) {
  testbed::ExperimentConfig cfg = small_group_config();
  cfg.runs = 4;
  cfg.obs.enabled = true;
  const auto full = testbed::run_experiment(cfg);
  cfg.obs.sample_every = 4;  // only round 0 of 0..3 sampled
  const auto thin = testbed::run_experiment(cfg);

  auto count_events = [](const obs::FlightLog& log, bool round_scoped) {
    std::size_t n = 0;
    std::vector<obs::FlightEvent> ring;
    for (std::uint16_t id : log.node_ids()) {
      ring.clear();
      log.node(id)->snapshot(ring);
      for (const auto& e : ring) {
        if ((e.round >= 0) == round_scoped) ++n;
      }
    }
    return n;
  };
  EXPECT_LT(count_events(*thin.flight_log, true),
            count_events(*full.flight_log, true));
  // Sampling must not perturb the run itself.
  EXPECT_EQ(full.mean.kappa, thin.mean.kappa);
  EXPECT_EQ(full.capture_sizes, thin.capture_sizes);
}

}  // namespace
}  // namespace choir
