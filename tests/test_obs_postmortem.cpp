// Postmortem root-cause analysis on full faulted group runs (chaos
// label): each `choirctl postmortem` chaos preset must produce a merged
// timeline whose analyzer names the faulted node and the injected fault
// as root cause — and the merged artifacts must stay byte-identical
// across --jobs values even under faults.
#include <gtest/gtest.h>

#include "analysis/postmortem.hpp"
#include "fault/chaos.hpp"
#include "obs/flight_log.hpp"
#include "obs/group_trace.hpp"
#include "obs/postmortem.hpp"
#include "testbed/experiment.hpp"

namespace choir {
namespace {

/// The group-chaos config (mirrors test_group_chaos.cpp): tight health
/// cadence so straggling is observable inside a ~2 ms trial.
testbed::ExperimentConfig group_config(int nodes, std::uint64_t packets) {
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_single();
  cfg.env.replayers = nodes;
  cfg.env.replayer_sync_fraction_of_run = 0.0;
  cfg.env.replayer_sync_sigma_ns = 25.0;
  cfg.packets = packets;
  cfg.runs = 2;
  cfg.seed = 11;
  cfg.collect_series = false;
  cfg.group.enabled = true;
  cfg.group.config.beacon_interval = microseconds(100);
  cfg.group.config.check_interval = microseconds(250);
  cfg.group.config.straggle_threshold = microseconds(400);
  cfg.group.config.resync_slack = microseconds(50);
  cfg.group.config.resync_retry = microseconds(500);
  cfg.obs.enabled = true;
  return cfg;
}

TEST(ObsPostmortem, StallPresetNamesStalledNodeAndFault) {
  // The acceptance scenario: node 1's NIC stalls mid-replay, the
  // coordinator resyncs it, and the postmortem must walk the merged
  // timeline back to the nic_tx_stall activation on node 11.
  testbed::ExperimentConfig cfg = group_config(3, 6000);
  const testbed::ReplaySchedule s = testbed::replay_schedule(cfg);
  cfg.env.faults = fault::group_node_stall_plan(
      1, s.wall_start(1) + s.trial_duration / 4, 2 * s.trial_duration / 3);
  const auto result = testbed::run_experiment(cfg);
  ASSERT_NE(result.flight_log, nullptr);

  const obs::GroupTimeline timeline = obs::merge_timeline(*result.flight_log);
  const obs::PostmortemReport report =
      obs::analyze_timeline(*result.flight_log, timeline);

  ASSERT_FALSE(report.outcomes.empty());
  bool named = false;
  for (const obs::Outcome& out : report.outcomes) {
    if (out.kind != obs::OutcomeKind::kResync) continue;
    EXPECT_EQ(out.node, 11);  // repl_node_id(1)
    EXPECT_NE(out.root_cause.find("nic_tx_stall"), std::string::npos);
    EXPECT_NE(out.root_cause.find("nic.repl1-out"), std::string::npos);
    EXPECT_NE(out.root_cause.find("node 11"), std::string::npos);
    EXPECT_GE(out.chain.size(), 3u);  // fault -> straggle -> resync
    named = true;
  }
  EXPECT_TRUE(named) << "no resync outcome blamed the stalled node";
  // The rendered report carries the verdict for the operator.
  const std::string text =
      analysis::render_postmortem(*result.flight_log, timeline, report);
  EXPECT_NE(text.find("nic_tx_stall"), std::string::npos);
  EXPECT_NE(text.find("repl1"), std::string::npos);
}

TEST(ObsPostmortem, ClockDegradePresetFlagsClockAnomaly) {
  testbed::ExperimentConfig cfg = group_config(3, 4000);
  const testbed::ReplaySchedule s = testbed::replay_schedule(cfg);
  cfg.env.faults = fault::group_clock_degrade_plan(
      1, 0, s.round_end(cfg.runs - 1) + milliseconds(10), 1000.0);
  const auto result = testbed::run_experiment(cfg);
  ASSERT_NE(result.flight_log, nullptr);

  const obs::GroupTimeline timeline = obs::merge_timeline(*result.flight_log);
  const obs::PostmortemReport report =
      obs::analyze_timeline(*result.flight_log, timeline);

  bool anomaly = false;
  for (const obs::Outcome& out : report.outcomes) {
    if (out.kind != obs::OutcomeKind::kClockAnomaly) continue;
    EXPECT_EQ(out.node, 11);
    EXPECT_NE(out.root_cause.find("clock_degrade"), std::string::npos);
    EXPECT_NE(out.root_cause.find("clock.repl1"), std::string::npos);
    anomaly = true;
  }
  EXPECT_TRUE(anomaly) << "degraded servo never flagged a clock anomaly";
}

TEST(ObsPostmortem, ControlLossPresetRecordsFaultAndRetriesSurvive) {
  // A half-lossy control path with retry enabled is absorbed — no bad
  // outcome — but the timeline still shows the fault activation and the
  // member status surfaces the retry traffic (the choirctl summary
  // columns read these fields).
  testbed::ExperimentConfig cfg = group_config(3, 4000);
  cfg.env.control_retry.max_attempts = 6;
  cfg.env.control_retry.initial_backoff = microseconds(100);
  cfg.env.control_retry.multiplier = 2.0;
  cfg.env.control_retry.timeout = milliseconds(4);
  cfg.env.faults = fault::group_control_loss_plan(1, 0, seconds(10), 0.5);
  const auto result = testbed::run_experiment(cfg);
  ASSERT_NE(result.flight_log, nullptr);

  const obs::GroupTimeline timeline = obs::merge_timeline(*result.flight_log);
  bool fault_seen = false;
  for (const auto& te : timeline.events) {
    if (te.e.kind != obs::EventKind::kFaultActive) continue;
    const std::string& point = result.flight_log->point_name(
        static_cast<std::uint16_t>(te.e.b));
    EXPECT_EQ(point, "link.to-repl1");
    fault_seen = true;
  }
  EXPECT_TRUE(fault_seen) << "control-loss activation never recorded";

  const obs::PostmortemReport report =
      obs::analyze_timeline(*result.flight_log, timeline);
  for (const obs::Outcome& out : report.outcomes) {
    EXPECT_NE(out.kind, obs::OutcomeKind::kEviction);
  }
  ASSERT_EQ(result.group_members.size(), 3u);
  for (const auto& m : result.group_members) {
    EXPECT_GT(m.ctl_sent, 0u);
    EXPECT_GT(m.ctl_retries, 0u);  // redundancy covers the lossy path
    EXPECT_EQ(m.ctl_timeouts, 0u);
  }
}

TEST(ObsPostmortem, FaultedArtifactsAreByteIdenticalAcrossJobs) {
  testbed::ExperimentConfig cfg = group_config(3, 6000);
  const testbed::ReplaySchedule s = testbed::replay_schedule(cfg);
  cfg.env.faults = fault::group_node_stall_plan(
      1, s.wall_start(1) + s.trial_duration / 4, 2 * s.trial_duration / 3);
  cfg.eval_jobs = 1;
  const auto seq = testbed::run_experiment(cfg);
  cfg.eval_jobs = 4;
  const auto par = testbed::run_experiment(cfg);
  ASSERT_NE(seq.flight_log, nullptr);
  ASSERT_NE(par.flight_log, nullptr);

  const obs::GroupTimeline ts = obs::merge_timeline(*seq.flight_log);
  const obs::GroupTimeline tp = obs::merge_timeline(*par.flight_log);
  EXPECT_EQ(obs::render_group_trace(*seq.flight_log, ts),
            obs::render_group_trace(*par.flight_log, tp));
  EXPECT_EQ(obs::render_events_jsonl(*seq.flight_log, ts),
            obs::render_events_jsonl(*par.flight_log, tp));
  const obs::PostmortemReport rs = obs::analyze_timeline(*seq.flight_log, ts);
  const obs::PostmortemReport rp = obs::analyze_timeline(*par.flight_log, tp);
  EXPECT_EQ(analysis::render_postmortem_json(*seq.flight_log, ts, rs),
            analysis::render_postmortem_json(*par.flight_log, tp, rp));
}

}  // namespace
}  // namespace choir
