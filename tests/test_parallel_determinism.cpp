// The parallel execution layer's acceptance oracle: everything the
// repo publishes — BENCH_*.json suites, per-experiment comparisons,
// telemetry artifacts — must be byte/bit-identical whether it was
// produced sequentially or fanned across task-pool workers. These tests
// pass explicit job counts (the host may have a single core; the pool
// still interleaves via preemption) and compare against both the
// sequential path and the committed baselines.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/task_pool.hpp"
#include "testbed/bench_suite.hpp"
#include "testbed/experiment.hpp"

namespace choir::testbed {
namespace {

namespace fs = std::filesystem;

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() / ("choir-par-" + tag +
                                   std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

void expect_bitwise_equal(const ExperimentResult& a,
                          const ExperimentResult& b) {
  EXPECT_EQ(a.recorded_packets, b.recorded_packets);
  EXPECT_EQ(a.capture_sizes, b.capture_sizes);
  ASSERT_EQ(a.comparisons.size(), b.comparisons.size());
  for (std::size_t i = 0; i < a.comparisons.size(); ++i) {
    const auto& ca = a.comparisons[i];
    const auto& cb = b.comparisons[i];
    EXPECT_EQ(ca.metrics.kappa, cb.metrics.kappa);
    EXPECT_EQ(ca.metrics.uniqueness, cb.metrics.uniqueness);
    EXPECT_EQ(ca.metrics.ordering, cb.metrics.ordering);
    EXPECT_EQ(ca.metrics.iat, cb.metrics.iat);
    EXPECT_EQ(ca.metrics.latency, cb.metrics.latency);
    EXPECT_EQ(ca.common, cb.common);
    EXPECT_EQ(ca.lcs_length, cb.lcs_length);
    EXPECT_EQ(ca.moved, cb.moved);
    EXPECT_EQ(ca.sum_abs_latency_delta_ns, cb.sum_abs_latency_delta_ns);
    EXPECT_EQ(ca.sum_abs_iat_delta_ns, cb.sum_abs_iat_delta_ns);
    EXPECT_EQ(ca.series.iat_delta_ns, cb.series.iat_delta_ns);
    EXPECT_EQ(ca.series.latency_delta_ns, cb.series.latency_delta_ns);
    EXPECT_EQ(ca.series.move_distance, cb.series.move_distance);
  }
  EXPECT_EQ(a.mean.kappa, b.mean.kappa);
}

TEST(ParallelDeterminism, SuiteBytesIndependentOfJobCount) {
  // The CI gate in executable form: quick and engines at --jobs 1 and
  // --jobs 4 must produce the same bytes, and those bytes must match
  // the committed baselines (CHOIR_SOURCE_DIR is stamped by CMake).
  const fs::path seq_dir = fresh_dir("seq");
  const fs::path par_dir = fresh_dir("par");
  for (const std::string suite : {"quick", "engines"}) {
    SuiteTiming timing;
    run_bench_suite(suite, seq_dir.string(), /*jobs=*/1);
    run_bench_suite(suite, par_dir.string(), /*jobs=*/4, &timing);
    const std::string file = "BENCH_" + suite + ".json";
    const std::string seq = read_bytes(seq_dir / file);
    const std::string par = read_bytes(par_dir / file);
    ASSERT_FALSE(seq.empty());
    EXPECT_EQ(seq, par) << file << " differs between --jobs 1 and 4";
    const fs::path baseline =
        fs::path(CHOIR_SOURCE_DIR) / "bench" / "baselines" / file;
    EXPECT_EQ(par, read_bytes(baseline))
        << file << " diverged from the committed baseline";
    // Host-side timing is reported, never written into the JSON.
    EXPECT_GT(timing.wall_ms, 0.0);
    EXPECT_GE(timing.tasks_ms, timing.wall_ms * 0.5);
  }
  fs::remove_all(seq_dir);
  fs::remove_all(par_dir);
}

TEST(ParallelDeterminism, EvalJobsBitIdentical) {
  // The per-comparison fan-out inside one experiment: κ evaluation at
  // eval_jobs 1 vs 4 must agree bit for bit, series included.
  ExperimentConfig cfg;
  cfg.env = local_single();
  cfg.packets = 4000;
  cfg.runs = 5;
  cfg.seed = 11;
  cfg.collect_series = true;
  cfg.eval_jobs = 1;
  const auto sequential = run_experiment(cfg);
  cfg.eval_jobs = 4;
  const auto parallel = run_experiment(cfg);
  ASSERT_EQ(sequential.comparisons.size(), 4u);
  expect_bitwise_equal(sequential, parallel);
}

TEST(ParallelDeterminism, ConcurrentExperimentsKeepTelemetryIsolated) {
  // Telemetry installation is thread-local: experiments running
  // concurrently on pool workers must each observe exactly the session
  // a sequential run of the same config would.
  auto config_for = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.env = local_single();
    cfg.packets = 3000;
    cfg.runs = 3;
    cfg.seed = seed;
    cfg.collect_series = false;
    cfg.telemetry.enabled = true;
    return cfg;
  };
  const std::vector<std::uint64_t> seeds = {5, 6, 7, 8};

  std::vector<ExperimentResult> reference;
  for (const auto seed : seeds) {
    reference.push_back(run_experiment(config_for(seed)));
  }
  const auto concurrent = parallel_map_indexed<ExperimentResult>(
      4, seeds.size(),
      [&](std::size_t i) { return run_experiment(config_for(seeds[i])); });

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    expect_bitwise_equal(reference[i], concurrent[i]);
    ASSERT_NE(concurrent[i].telemetry_registry, nullptr);
    const auto ref_snap = reference[i].telemetry_registry->snapshot(0);
    const auto par_snap = concurrent[i].telemetry_registry->snapshot(0);
    EXPECT_EQ(ref_snap.counters, par_snap.counters) << "seed " << seeds[i];
    EXPECT_EQ(ref_snap.gauges, par_snap.gauges) << "seed " << seeds[i];
    ASSERT_NE(concurrent[i].telemetry_trace, nullptr);
    EXPECT_EQ(reference[i].telemetry_trace->events().size(),
              concurrent[i].telemetry_trace->events().size());
  }
}

TEST(ParallelDeterminism, WorkerScopedProfilersMergeIntoTheSession) {
  // With profiling on, the parallel evaluation runs each comparison
  // under its own worker-scoped profiler and merges them after the
  // join: the session profile must still see every kappa.compare span.
  ExperimentConfig cfg;
  cfg.env = local_single();
  cfg.packets = 3000;
  cfg.runs = 5;
  cfg.seed = 21;
  cfg.telemetry.enabled = true;
  cfg.telemetry.profile = true;
  cfg.eval_jobs = 1;
  const auto sequential = run_experiment(cfg);
  cfg.eval_jobs = 4;
  const auto parallel = run_experiment(cfg);
  expect_bitwise_equal(sequential, parallel);

  ASSERT_NE(parallel.profile, nullptr);
  auto compare_count = [](const telemetry::SpanProfiler& profiler) {
    for (const auto& entry : profiler.summary()) {
      if (entry.name == "kappa.compare") return entry.agg.count;
    }
    return std::uint64_t{0};
  };
  EXPECT_EQ(compare_count(*sequential.profile), 4u);
  EXPECT_EQ(compare_count(*parallel.profile), 4u);
}

}  // namespace
}  // namespace choir::testbed
