#include "trace/pcap.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/expect.hpp"
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "pktio/headers.hpp"
#include "trace/tag.hpp"

namespace choir::trace {
namespace {

struct PcapTest : ::testing::Test {
  std::string path;
  void SetUp() override {
    path = ::testing::TempDir() + "choir_pcap_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".pcap";
  }
  void TearDown() override { std::remove(path.c_str()); }

  std::vector<std::uint8_t> slurp() {
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in), {});
  }
};

Capture one_packet_capture(Ns ts = seconds(1) + 500) {
  pktio::Frame frame;
  frame.wire_len = 100;
  pktio::FlowAddress flow;
  flow.src_mac = pktio::mac_for_node(1);
  flow.dst_mac = pktio::mac_for_node(2);
  flow.src_ip = pktio::ip_for_node(1);
  flow.dst_ip = pktio::ip_for_node(2);
  flow.src_port = 7;
  flow.dst_port = 8;
  pktio::write_eth_ipv4_udp(frame, flow);
  frame.payload_token = 0xFEED;
  stamp(frame, Tag{1, 0, 42});
  Capture cap("pcap");
  cap.append(CaptureRecord::from_frame(frame, ts));
  return cap;
}

TEST_F(PcapTest, GlobalHeaderIsNanosecondPcap) {
  write_pcap(one_packet_capture(), path);
  const auto bytes = slurp();
  ASSERT_GE(bytes.size(), 24u);
  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  EXPECT_EQ(magic, 0xa1b23c4du);
}

TEST_F(PcapTest, RecordHeaderCarriesTimestampAndLengths) {
  write_pcap(one_packet_capture(seconds(3) + 123), path);
  const auto bytes = slurp();
  ASSERT_GE(bytes.size(), 24u + 16u + 100u);
  std::uint32_t sec, nsec, incl, orig;
  std::memcpy(&sec, bytes.data() + 24, 4);
  std::memcpy(&nsec, bytes.data() + 28, 4);
  std::memcpy(&incl, bytes.data() + 32, 4);
  std::memcpy(&orig, bytes.data() + 36, 4);
  EXPECT_EQ(sec, 3u);
  EXPECT_EQ(nsec, 123u);
  EXPECT_EQ(incl, 100u);
  EXPECT_EQ(orig, 100u);
}

TEST_F(PcapTest, FrameBytesContainHeadersAndTrailer) {
  write_pcap(one_packet_capture(), path);
  const auto bytes = slurp();
  const std::uint8_t* frame = bytes.data() + 24 + 16;
  // Ethernet destination = mac_for_node(2).
  EXPECT_EQ(0, std::memcmp(frame, pktio::mac_for_node(2).bytes.data(), 6));
  // Trailer occupies the last 16 bytes and decodes back to the tag.
  std::array<std::uint8_t, 16> trailer;
  std::memcpy(trailer.data(), frame + 100 - 16, 16);
  const auto tag = decode_tag(trailer);
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(tag->sequence, 42u);
}

TEST_F(PcapTest, PayloadFillerIsDeterministic) {
  write_pcap(one_packet_capture(), path);
  const auto first = slurp();
  write_pcap(one_packet_capture(), path);
  EXPECT_EQ(slurp(), first);
}

TEST_F(PcapTest, SnaplenTruncatesInclNotOrig) {
  PcapOptions opt;
  opt.snaplen = 60;
  write_pcap(one_packet_capture(), path, opt);
  const auto bytes = slurp();
  std::uint32_t incl, orig;
  std::memcpy(&incl, bytes.data() + 32, 4);
  std::memcpy(&orig, bytes.data() + 36, 4);
  EXPECT_EQ(incl, 60u);
  EXPECT_EQ(orig, 100u);
  EXPECT_EQ(bytes.size(), 24u + 16u + 60u);
}

TEST_F(PcapTest, NegativeTimestampClampedToEpoch) {
  write_pcap(one_packet_capture(-5), path);
  const auto bytes = slurp();
  std::uint32_t sec, nsec;
  std::memcpy(&sec, bytes.data() + 24, 4);
  std::memcpy(&nsec, bytes.data() + 28, 4);
  EXPECT_EQ(sec, 0u);
  EXPECT_EQ(nsec, 0u);
}

TEST_F(PcapTest, ReadBackRecoversStructure) {
  const Capture original = one_packet_capture(seconds(2) + 77);
  write_pcap(original, path);
  const Capture loaded = read_pcap(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].timestamp, seconds(2) + 77);
  EXPECT_EQ(loaded[0].wire_len, 100u);
  EXPECT_EQ(loaded[0].header_len, pktio::kEthIpv4UdpLen);
  ASSERT_TRUE(loaded[0].has_trailer);
  EXPECT_EQ(decode_tag(loaded[0].trailer)->sequence, 42u);
  // Header bytes round-trip exactly.
  for (int i = 0; i < pktio::kEthIpv4UdpLen; ++i) {
    EXPECT_EQ(loaded[0].header[i], original[0].header[i]);
  }
}

TEST_F(PcapTest, ReadBackTrialMatchesOriginal) {
  Capture cap("multi");
  for (std::uint64_t s = 0; s < 64; ++s) {
    pktio::Frame frame;
    frame.wire_len = 200;
    pktio::FlowAddress flow;
    flow.src_mac = pktio::mac_for_node(1);
    flow.dst_mac = pktio::mac_for_node(2);
    flow.src_ip = pktio::ip_for_node(1);
    flow.dst_ip = pktio::ip_for_node(2);
    pktio::write_eth_ipv4_udp(frame, flow);
    stamp(frame, Tag{3, 0, s});
    cap.append(CaptureRecord::from_frame(frame, 1000 + 280 * static_cast<Ns>(s)));
  }
  write_pcap(cap, path);
  const Capture loaded = read_pcap(path);
  const auto cmp =
      core::compare_trials(cap.to_trial(), loaded.to_trial());
  EXPECT_EQ(cmp.metrics.kappa, 1.0);
}

TEST_F(PcapTest, SnaplenTruncationDropsTrailerSafely) {
  PcapOptions opt;
  opt.snaplen = 60;  // cuts off the trailer
  write_pcap(one_packet_capture(), path, opt);
  const Capture loaded = read_pcap(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FALSE(loaded[0].has_trailer);
  EXPECT_EQ(loaded[0].wire_len, 100u);  // orig preserved
}

TEST_F(PcapTest, ReadRejectsGarbage) {
  std::ofstream out(path, std::ios::binary);
  out << "this is not a pcap";
  out.close();
  EXPECT_THROW(read_pcap(path), Error);
}

TEST_F(PcapTest, ReadRejectsTruncatedRecord) {
  write_pcap(one_packet_capture(), path);
  ASSERT_EQ(truncate(path.c_str(), 24 + 16 + 10), 0);
  EXPECT_THROW(read_pcap(path), Error);
}

TEST(PayloadFiller, StableAcrossCalls) {
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(payload_filler_byte(123, i), payload_filler_byte(123, i));
  }
  EXPECT_NE(payload_filler_byte(123, 0), payload_filler_byte(124, 0));
}

}  // namespace
}  // namespace choir::trace
