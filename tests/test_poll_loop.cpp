#include "net/poll_loop.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace choir::net {
namespace {

using test::make_frame;

NicConfig quiet() {
  NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  return cfg;
}

struct PollFixture : ::testing::Test {
  sim::EventQueue queue;
  Link stub{queue};
  pktio::Mempool pool{64};
};

TEST_F(PollFixture, ParksWhenIdle) {
  PhysNic nic(queue, quiet(), Rng(1), stub);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  PollLoopConfig cfg;
  cfg.interval = 1000;
  cfg.idle_polls_to_park = 4;
  cfg.jitter_sigma_ns = 0.0;
  PollLoop loop(queue, vf, cfg, Rng(2));
  loop.set_handler([] { return false; });
  loop.start();
  queue.run_until(milliseconds(1));
  // 4 idle polls then parked; far fewer than 1000 iterations.
  EXPECT_LE(loop.iterations(), 5u);
  EXPECT_TRUE(loop.parked());
}

TEST_F(PollFixture, WakesOnTraffic) {
  PhysNic nic(queue, quiet(), Rng(3), stub);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  PollLoopConfig cfg;
  cfg.interval = 1000;
  cfg.idle_polls_to_park = 2;
  PollLoop loop(queue, vf, cfg, Rng(4));
  int drained = 0;
  loop.set_handler([&] {
    pktio::Mbuf* out[8];
    const auto n = vf.backend_rx(out, 8);
    for (std::uint16_t i = 0; i < n; ++i) pktio::Mempool::release(out[i]);
    drained += n;
    return n > 0;
  });
  loop.start();
  queue.run_until(milliseconds(1));
  ASSERT_TRUE(loop.parked());

  nic.deliver(make_frame(pool, 1400, 1), queue.now() + 10);
  queue.run_until(queue.now() + milliseconds(1));
  EXPECT_EQ(drained, 1);
}

TEST_F(PollFixture, WakeupPollLandsWithinOnePeriod) {
  PhysNic nic(queue, quiet(), Rng(5), stub);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  PollLoopConfig cfg;
  cfg.interval = 5000;
  cfg.idle_polls_to_park = 1;
  PollLoop loop(queue, vf, cfg, Rng(6));
  Ns drain_time = -1;
  loop.set_handler([&] {
    pktio::Mbuf* out[8];
    const auto n = vf.backend_rx(out, 8);
    for (std::uint16_t i = 0; i < n; ++i) pktio::Mempool::release(out[i]);
    if (n > 0 && drain_time < 0) drain_time = queue.now();
    return n > 0;
  });
  loop.start();
  queue.run_until(milliseconds(1));
  const Ns arrival = queue.now() + 100;
  nic.deliver(make_frame(pool, 1400, 1), arrival);
  queue.run_until(arrival + 2 * cfg.interval);
  ASSERT_GE(drain_time, arrival);
  EXPECT_LE(drain_time - arrival, cfg.interval + 1);
}

TEST_F(PollFixture, KeepsPollingWhileBusy) {
  PhysNic nic(queue, quiet(), Rng(7), stub);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  PollLoopConfig cfg;
  cfg.interval = 500;
  cfg.jitter_sigma_ns = 0.0;
  PollLoop loop(queue, vf, cfg, Rng(8));
  int polls_with_work = 0;
  loop.set_handler([&] {
    pktio::Mbuf* out[2];
    const auto n = vf.backend_rx(out, 2);
    for (std::uint16_t i = 0; i < n; ++i) pktio::Mempool::release(out[i]);
    if (n > 0) ++polls_with_work;
    return n > 0;
  });
  loop.start();
  // Deliver a steady stream.
  for (int i = 0; i < 20; ++i) {
    nic.deliver(make_frame(pool, 1400, i), 1000 + i * 500);
  }
  queue.run_until(milliseconds(1));
  EXPECT_GE(polls_with_work, 10);
}

TEST_F(PollFixture, StopHaltsIterations) {
  PhysNic nic(queue, quiet(), Rng(9), stub);
  Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  PollLoop loop(queue, vf, PollLoopConfig{}, Rng(10));
  loop.set_handler([] { return true; });  // would poll forever
  loop.start();
  queue.run_until(microseconds(10));
  const auto before = loop.iterations();
  EXPECT_GT(before, 0u);
  loop.stop();
  queue.run_until(milliseconds(1));
  EXPECT_LE(loop.iterations(), before + 1);
}

}  // namespace
}  // namespace choir::net
