#include "testbed/presets.hpp"

#include <set>

#include <gtest/gtest.h>

namespace choir::testbed {
namespace {

TEST(Presets, AllNineEnvironmentsPresent) {
  const auto presets = all_presets();
  EXPECT_EQ(presets.size(), 9u);  // the nine Table 2 rows
  std::set<std::string> names;
  for (const auto& p : presets) names.insert(p.name);
  EXPECT_EQ(names.size(), 9u);  // distinct
}

TEST(Presets, LocalDualHasTwoReplayers) {
  EXPECT_EQ(local_single().replayers, 1);
  EXPECT_EQ(local_dual().replayers, 2);
  EXPECT_GT(local_dual().replayer_sync_fraction_of_run, 0.0);
}

TEST(Presets, RatesMatchPaper) {
  EXPECT_DOUBLE_EQ(local_single().rate, gbps(40));
  EXPECT_DOUBLE_EQ(fabric_dedicated_80().rate, gbps(80));
  EXPECT_DOUBLE_EQ(fabric_shared_80().rate, gbps(80));
  EXPECT_DOUBLE_EQ(fabric_shared_40_noisy().rate, gbps(40));
  for (const auto& p : all_presets()) {
    EXPECT_EQ(p.frame_bytes, 1400u);  // the paper's frame size throughout
  }
}

TEST(Presets, NoiseTopologyFlags) {
  EXPECT_FALSE(local_single().with_noise);
  EXPECT_TRUE(fabric_shared_40_noisy().with_noise);
  EXPECT_TRUE(fabric_shared_40_noisy().noise_shares_path);
  // Dedicated NICs isolate the experiment from site noise.
  EXPECT_TRUE(fabric_dedicated_80_noisy().with_noise);
  EXPECT_FALSE(fabric_dedicated_80_noisy().noise_shares_path);
}

TEST(Presets, LocalQuieterThanFabric) {
  // The paper's central finding: FABRIC adds IAT variance. The presets
  // must encode that through the receive-stall process.
  const auto local = local_single();
  const auto fabric = fabric_dedicated_40_epoch1();
  EXPECT_LT(local.recorder_nic.stall_rate_hz,
            fabric.recorder_nic.stall_rate_hz);
}

TEST(Presets, SecondDedicatedEpochHasLargerWander) {
  EXPECT_GT(fabric_dedicated_40_epoch2().recorder_nic.wander_sigma_ns,
            fabric_dedicated_40_epoch1().recorder_nic.wander_sigma_ns * 5);
}

TEST(Presets, NoisePresetEnvelopeMatchesIperf) {
  const auto p = fabric_shared_40_noisy();
  EXPECT_DOUBLE_EQ(p.noise.min_rate, gbps(35));
  EXPECT_DOUBLE_EQ(p.noise.max_rate, gbps(50));
}

TEST(Presets, SharedFlagConsistency) {
  EXPECT_FALSE(fabric_dedicated_40_epoch1().shared_nics);
  EXPECT_TRUE(fabric_shared_40().shared_nics);
  EXPECT_TRUE(fabric_shared_80().shared_nics);
}

TEST(Presets, ChoirConfigsSane) {
  for (const auto& p : all_presets()) {
    EXPECT_GT(p.choir.poll.interval, 0);
    EXPECT_GE(p.choir.loop_check_ns, 0.0);
    EXPECT_GT(p.choir.max_recorded_packets, 1'000'000u);  // paper scale fits
  }
}

}  // namespace
}  // namespace choir::testbed
