#include "sim/ptp.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace choir::sim {
namespace {

TEST(Ptp, SyncsAtConfiguredCadence) {
  EventQueue q;
  PtpConfig cfg;
  cfg.interval = milliseconds(100);
  PtpService ptp(q, cfg, Rng(1));
  SystemClock clock(1'000'000);  // 1 ms off before first sync
  ptp.add_slave(&clock);
  ptp.start();
  q.run_until(seconds(1));
  // Initial sync plus ten interval syncs.
  EXPECT_EQ(ptp.rounds(), 11u);
}

TEST(Ptp, PullsOffsetIntoResidualBand) {
  EventQueue q;
  PtpConfig cfg;
  cfg.residual_sigma_ns = 20.0;
  PtpService ptp(q, cfg, Rng(2));
  SystemClock clock(5'000'000);
  ptp.add_slave(&clock);
  ptp.start();
  // Right after sync the offset is a ~N(0, 20 ns) draw.
  EXPECT_LT(std::abs(clock.current_offset(q.now())), 200.0);
}

TEST(Ptp, ResidualsVaryAcrossRounds) {
  EventQueue q;
  PtpConfig cfg;
  cfg.interval = milliseconds(10);
  cfg.residual_sigma_ns = 50.0;
  PtpService ptp(q, cfg, Rng(3));
  SystemClock clock;
  ptp.add_slave(&clock);
  ptp.start();
  const double first = clock.current_offset(q.now());
  q.run_until(milliseconds(15));
  const double second = clock.current_offset(q.now());
  EXPECT_NE(first, second);
}

TEST(Ptp, PerSlaveSigmaOverride) {
  EventQueue q;
  PtpConfig cfg;
  cfg.interval = milliseconds(10);
  cfg.residual_sigma_ns = 10.0;
  PtpService ptp(q, cfg, Rng(4));
  SystemClock tight, loose;
  ptp.add_slave(&tight);
  ptp.add_slave(&loose, /*residual_sigma_ns=*/1e6);
  ptp.start();
  double tight_max = 0, loose_max = 0;
  for (int i = 0; i < 50; ++i) {
    q.run_until(q.now() + milliseconds(10));
    tight_max = std::max(tight_max, std::abs(tight.current_offset(q.now())));
    loose_max = std::max(loose_max, std::abs(loose.current_offset(q.now())));
  }
  EXPECT_LT(tight_max, 100.0);
  EXPECT_GT(loose_max, 10'000.0);
}

TEST(Ptp, MasterOffsetIsSystematic) {
  EventQueue q;
  PtpConfig cfg;
  cfg.master_offset_ns = 1000.0;
  cfg.residual_sigma_ns = 1.0;
  PtpService ptp(q, cfg, Rng(5));
  SystemClock clock;
  ptp.add_slave(&clock);
  ptp.start();
  EXPECT_NEAR(clock.current_offset(q.now()), 1000.0, 10.0);
}

TEST(Ptp, ResidualDistributionMatchesSigma) {
  EventQueue q;
  PtpConfig cfg;
  cfg.interval = milliseconds(1);
  cfg.residual_sigma_ns = 40.0;
  PtpService ptp(q, cfg, Rng(6));
  SystemClock clock;
  ptp.add_slave(&clock);
  ptp.start();
  double sq = 0;
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    q.run_until(q.now() + milliseconds(1));
    const double o = clock.current_offset(q.now());
    sq += o * o;
  }
  EXPECT_NEAR(std::sqrt(sq / rounds), 40.0, 4.0);
}

TEST(Ptp, ExposesLastAppliedResidualPerSlave) {
  EventQueue q;
  PtpConfig cfg;
  cfg.interval = milliseconds(100);
  cfg.residual_sigma_ns = 30.0;
  PtpService ptp(q, cfg, Rng(21));
  SystemClock a, b;
  const std::size_t ia = ptp.add_slave(&a);
  const std::size_t ib = ptp.add_slave(&b);
  ASSERT_EQ(ptp.slave_count(), 2u);
  ptp.start();
  q.run_until(milliseconds(450));
  // The getter reports exactly the offset the servo last applied.
  EXPECT_EQ(ptp.last_offset_ns(ia), a.current_offset(q.now()));
  EXPECT_EQ(ptp.last_offset_ns(ib), b.current_offset(q.now()));
  EXPECT_NE(ptp.last_offset_ns(ia), ptp.last_offset_ns(ib));
  // 5 rounds (initial + 4 intervals) counted per slave.
  EXPECT_EQ(ptp.syncs(ia), 5u);
  EXPECT_EQ(ptp.syncs(ib), 5u);
  EXPECT_GE(ptp.worst_abs_offset_ns(ia),
            std::fabs(ptp.last_offset_ns(ia)));
}

TEST(Ptp, SigmaScaleHookDegradesResiduals) {
  // The fault-layer hook scales the residual sigma inside a window;
  // outside it the scale is 1 and the draw sequence is untouched, so a
  // hooked service with an inactive window matches an unhooked one.
  EventQueue q1, q2;
  PtpConfig cfg;
  cfg.interval = milliseconds(10);
  cfg.residual_sigma_ns = 20.0;
  SystemClock plain, hooked;
  PtpService p1(q1, cfg, Rng(31));
  PtpService p2(q2, cfg, Rng(31));
  p1.add_slave(&plain);
  const std::size_t i2 = p2.add_slave(&hooked);
  p2.set_sigma_scale(i2, [](Ns) { return 1.0; });
  p1.start();
  p2.start();
  q1.run_until(milliseconds(100));
  q2.run_until(milliseconds(100));
  EXPECT_EQ(plain.current_offset(q1.now()), hooked.current_offset(q2.now()));

  // A 100x window produces visibly larger residuals.
  EventQueue q3;
  SystemClock degraded;
  PtpService p3(q3, cfg, Rng(31));
  const std::size_t i3 = p3.add_slave(&degraded);
  p3.set_sigma_scale(i3, [](Ns) { return 100.0; });
  p3.start();
  q3.run_until(milliseconds(100));
  EXPECT_NEAR(p3.worst_abs_offset_ns(i3), 100.0 * p2.worst_abs_offset_ns(i2),
              1e-6 * p3.worst_abs_offset_ns(i3));
}

TEST(Ptp, TwoSlavesGetIndependentResiduals) {
  EventQueue q;
  PtpConfig cfg;
  cfg.residual_sigma_ns = 50.0;
  PtpService ptp(q, cfg, Rng(7));
  SystemClock a, b;
  ptp.add_slave(&a);
  ptp.add_slave(&b);
  ptp.start();
  EXPECT_NE(a.current_offset(q.now()), b.current_offset(q.now()));
}

}  // namespace
}  // namespace choir::sim
