// Message-level PTP: offset estimation, servo convergence, asymmetry
// bias, and behaviour over a contended in-band path.
#include "net/ptp_protocol.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "net/switch.hpp"
#include "test_helpers.hpp"

namespace choir::net {
namespace {

NicConfig quiet() {
  NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  return cfg;
}

pktio::FlowAddress master_to_slave() {
  pktio::FlowAddress f;
  f.src_mac = pktio::mac_for_node(1);
  f.dst_mac = pktio::mac_for_node(2);
  f.src_ip = pktio::ip_for_node(1);
  f.dst_ip = pktio::ip_for_node(2);
  return f;
}

TEST(PtpCodec, RoundTrip) {
  pktio::Frame frame;
  const PtpMessage msg{PtpMessageType::kFollowUp, 42, 123456789};
  encode_ptp(frame, master_to_slave(), msg);
  const auto decoded = decode_ptp(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, PtpMessageType::kFollowUp);
  EXPECT_EQ(decoded->sequence, 42);
  EXPECT_EQ(decoded->origin_timestamp, 123456789);
}

TEST(PtpCodec, RejectsNonPtpFrames) {
  pktio::Frame frame;
  frame.wire_len = 100;
  pktio::write_eth_ipv4_udp(frame, master_to_slave());
  EXPECT_FALSE(decode_ptp(frame).has_value());
}

/// Two nodes joined by a symmetric switch path; slave starts with a
/// known clock error.
struct PtpFixture : ::testing::Test {
  sim::EventQueue queue;
  Switch sw{queue, SwitchConfig{}, Rng(1)};
  std::size_t m_in = sw.add_port();
  std::size_t m_out = sw.add_port();
  std::size_t s_in = sw.add_port();
  std::size_t s_out = sw.add_port();

  Link m_link{queue}, s_link{queue};
  PhysNic master_nic{queue, quiet(), Rng(2), m_link};
  PhysNic slave_nic{queue, quiet(), Rng(3), s_link};
  Vf& master_vf{master_nic.add_vf(pktio::mac_for_node(1))};
  Vf& slave_vf{slave_nic.add_vf(pktio::mac_for_node(2))};
  pktio::Mempool m_pool{256}, s_pool{256};

  sim::NodeClock master_clock{sim::TscClock(2.5), sim::SystemClock(0)};
  sim::NodeClock slave_clock{sim::TscClock(2.5),
                             sim::SystemClock(50'000)};  // 50 us off

  PtpFixture() {
    m_link.connect(sw.ingress(m_in));
    s_link.connect(sw.ingress(s_in));
    sw.set_mac_route(pktio::mac_for_node(2), m_out);
    sw.set_mac_route(pktio::mac_for_node(1), s_out);
    sw.egress_link(m_out).connect(slave_nic);
    sw.egress_link(s_out).connect(master_nic);
  }
};

pktio::FlowAddress slave_to_master() {
  auto f = master_to_slave();
  std::swap(f.src_mac, f.dst_mac);
  std::swap(f.src_ip, f.dst_ip);
  return f;
}

TEST_F(PtpFixture, ExchangeCompletes) {
  PtpMaster master(queue, master_clock, master_vf, m_pool,
                   master_to_slave(), {}, Rng(4));
  PtpSlave slave(queue, slave_clock, slave_vf, s_pool, slave_to_master(),
                 {}, Rng(5));
  master.start();
  slave.start();
  queue.run_until(seconds(1));
  EXPECT_GT(master.syncs_sent(), 5u);
  EXPECT_GT(slave.exchanges_completed(), 5u);
  EXPECT_EQ(master.delay_reqs_answered(), slave.exchanges_completed());
}

TEST_F(PtpFixture, ServoConvergesFromLargeOffset) {
  PtpMaster::Config mcfg;
  mcfg.stamp_sigma_ns = 10.0;
  PtpSlave::Config scfg;
  scfg.stamp_sigma_ns = 10.0;
  PtpMaster master(queue, master_clock, master_vf, m_pool,
                   master_to_slave(), mcfg, Rng(6));
  PtpSlave slave(queue, slave_clock, slave_vf, s_pool, slave_to_master(),
                 scfg, Rng(7));
  master.start();
  slave.start();
  EXPECT_NEAR(slave_clock.system.current_offset(queue.now()), 50'000, 1);
  queue.run_until(seconds(2));
  // After many exchanges the 50 us initial error collapses to the
  // software-stamping floor (tens of ns).
  EXPECT_LT(std::abs(slave_clock.system.current_offset(queue.now())), 200.0);
  EXPECT_GT(slave.exchanges_completed(), 10u);
  // Path delay estimate is positive and on the scale of the two-hop
  // switch path (processing + serialization + cables).
  EXPECT_GT(slave.last_path_delay_ns(), 100.0);
  EXPECT_LT(slave.last_path_delay_ns(), 10'000.0);
}

TEST_F(PtpFixture, AsymmetricPathBiasesOffset) {
  // Classic PTP failure: extra delay on the master->slave leg shifts the
  // offset estimate by half the asymmetry. Add 10 us of cable on that
  // leg only.
  sw.egress_link(m_out).connect(slave_nic);  // reconnect with new config
  // Rebuild the asymmetric leg: a long cable from switch to slave.
  // (LinkConfig is fixed at port creation; emulate by inserting delay at
  // the slave's ingress through a second switch port pair.)
  // Simpler: a dedicated switch with a slow egress link.
  sim::EventQueue q2;
  Switch sw2(q2, SwitchConfig{}, Rng(8));
  const auto a_in = sw2.add_port(LinkConfig{50});
  const auto to_slave = sw2.add_port(LinkConfig{10'050});  // +10 us leg
  const auto b_in = sw2.add_port(LinkConfig{50});
  const auto to_master = sw2.add_port(LinkConfig{50});
  Link ml(q2), sl(q2);
  PhysNic mnic(q2, quiet(), Rng(9), ml);
  PhysNic snic(q2, quiet(), Rng(10), sl);
  Vf& mvf = mnic.add_vf(pktio::mac_for_node(1));
  Vf& svf = snic.add_vf(pktio::mac_for_node(2));
  ml.connect(sw2.ingress(a_in));
  sl.connect(sw2.ingress(b_in));
  sw2.set_mac_route(pktio::mac_for_node(2), to_slave);
  sw2.set_mac_route(pktio::mac_for_node(1), to_master);
  sw2.egress_link(to_slave).connect(snic);
  sw2.egress_link(to_master).connect(mnic);
  pktio::Mempool mp(256), sp(256);
  sim::NodeClock mclk{sim::TscClock(2.5), sim::SystemClock(0)};
  sim::NodeClock sclk{sim::TscClock(2.5), sim::SystemClock(0)};  // in sync!

  PtpMaster::Config mcfg;
  mcfg.stamp_sigma_ns = 0.0;
  PtpSlave::Config scfg;
  scfg.stamp_sigma_ns = 0.0;
  PtpMaster master(q2, mclk, mvf, mp, master_to_slave(), mcfg, Rng(11));
  PtpSlave slave(q2, sclk, svf, sp, slave_to_master(), scfg, Rng(12));
  master.start();
  slave.start();
  q2.run_until(seconds(2));
  // The slave was perfectly synchronized; asymmetry drags it off by
  // about half of 10 us.
  EXPECT_NEAR(std::abs(sclk.system.current_offset(q2.now())), 5'000.0,
              1'000.0);
  EXPECT_GT(slave.exchanges_completed(), 5u);
}

TEST_F(PtpFixture, StampNoiseSetsResidualFloor) {
  PtpMaster::Config mcfg;
  mcfg.stamp_sigma_ns = 500.0;  // sloppy software stamps
  PtpSlave::Config scfg;
  scfg.stamp_sigma_ns = 500.0;
  PtpMaster master(queue, master_clock, master_vf, m_pool,
                   master_to_slave(), mcfg, Rng(13));
  PtpSlave slave(queue, slave_clock, slave_vf, s_pool, slave_to_master(),
                 scfg, Rng(14));
  master.start();
  slave.start();
  queue.run_until(seconds(4));
  // Offsets keep bouncing on the order of the stamp noise; they never
  // settle to the quiet-path floor.
  EXPECT_GT(slave.mean_abs_offset_ns(), 100.0);
}

}  // namespace
}  // namespace choir::net
