#include "trace/recorder.hpp"

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "test_helpers.hpp"

namespace choir::trace {
namespace {

net::NicConfig quiet() {
  net::NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  return cfg;
}

struct RecorderFixture : ::testing::Test {
  sim::EventQueue queue;
  net::Link stub{queue};
  pktio::Mempool pool{4096};

  void deliver_n(net::PhysNic& nic, int n, Ns start, Ns gap) {
    for (int i = 0; i < n; ++i) {
      nic.deliver(test::make_frame(pool, 1400, i, 1, 2), start + i * gap);
    }
  }
};

TEST_F(RecorderFixture, RecordsWithinArmedWindow) {
  net::PhysNic nic(queue, quiet(), Rng(1), stub);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  CaptureDaemon daemon(queue, vf, {}, Rng(2));
  Capture cap("window");
  daemon.arm(microseconds(10), milliseconds(1), &cap);
  queue.run_until(microseconds(20));
  deliver_n(nic, 50, queue.now(), 280);
  queue.run();
  EXPECT_EQ(cap.size(), 50u);
  EXPECT_EQ(daemon.recorded(), 50u);
}

TEST_F(RecorderFixture, DiscardsOutsideWindow) {
  net::PhysNic nic(queue, quiet(), Rng(3), stub);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  CaptureDaemon daemon(queue, vf, {}, Rng(4));
  Capture cap("window");
  daemon.arm(milliseconds(10), milliseconds(20), &cap);
  // Traffic before the window opens.
  deliver_n(nic, 30, microseconds(1), 280);
  queue.run();
  EXPECT_EQ(cap.size(), 0u);
  EXPECT_EQ(daemon.discarded(), 30u);
}

TEST_F(RecorderFixture, PreservesArrivalOrderAndTimestamps) {
  net::PhysNic nic(queue, quiet(), Rng(5), stub);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  CaptureDaemon daemon(queue, vf, {}, Rng(6));
  Capture cap("order");
  daemon.arm(0, seconds(1), &cap);
  deliver_n(nic, 100, microseconds(5), 280);
  queue.run();
  ASSERT_EQ(cap.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(cap[i].payload_token, i);
    EXPECT_EQ(cap[i].timestamp, microseconds(5) + static_cast<Ns>(i) * 280);
  }
}

TEST_F(RecorderFixture, ReleasesBuffersAfterRecording) {
  net::PhysNic nic(queue, quiet(), Rng(7), stub);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  CaptureDaemon daemon(queue, vf, {}, Rng(8));
  Capture cap("release");
  daemon.arm(0, seconds(1), &cap);
  deliver_n(nic, 200, microseconds(5), 280);
  queue.run();
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST_F(RecorderFixture, BackToBackWindowsSegmentRuns) {
  net::PhysNic nic(queue, quiet(), Rng(9), stub);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  CaptureDaemon daemon(queue, vf, {}, Rng(10));
  Capture run_a("a"), run_b("b");
  daemon.arm(0, milliseconds(1), &run_a);
  daemon.arm(milliseconds(2), milliseconds(3), &run_b);
  // Delivered in chronological order, as a real wire would.
  deliver_n(nic, 10, microseconds(100), 280);        // run A
  deliver_n(nic, 5, milliseconds(1) + 1000, 280);    // gap: discarded
  deliver_n(nic, 20, milliseconds(2) + 1000, 280);   // run B
  queue.run();
  EXPECT_EQ(run_a.size(), 10u);
  EXPECT_EQ(run_b.size(), 20u);
  EXPECT_EQ(daemon.discarded(), 5u);
}

TEST_F(RecorderFixture, KeepsUpWithFortyGig) {
  net::PhysNic nic(queue, quiet(), Rng(11), stub);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(2));
  CaptureDaemon daemon(queue, vf, {}, Rng(12));
  Capture cap("fast");
  daemon.arm(0, seconds(1), &cap);
  pktio::Mempool big(20000);
  deliver_n(nic, 1, microseconds(1), 0);
  for (int i = 0; i < 10000; ++i) {
    nic.deliver(test::make_frame(big, 1400, i, 1, 2),
                microseconds(2) + i * 280);
  }
  queue.run();
  EXPECT_EQ(cap.size(), 10001u);
  EXPECT_EQ(vf.imissed(), 0u);
}

}  // namespace
}  // namespace choir::trace
