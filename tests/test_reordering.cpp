#include "core/reordering.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace choir::core {
namespace {

Trial make_trial(const std::vector<std::uint64_t>& ids) {
  Trial t;
  Ns now = 0;
  for (const auto id : ids) {
    t.push_back(TrialPacket{PacketId{0, id}, now});
    now += 100;
  }
  return t;
}

TEST(ReorderBySpacing, ZeroForIdenticalOrder) {
  const Trial a = make_trial({1, 2, 3, 4, 5, 6});
  const auto al = align_trials(a, a);
  const auto r = reorder_probability_by_spacing(al, 3);
  for (const double p : r.probability) EXPECT_EQ(p, 0.0);
  EXPECT_EQ(r.pairs_reordered, 0u);
  EXPECT_GT(r.pairs_examined, 0u);
}

TEST(ReorderBySpacing, AdjacentSwapOnlyAffectsSpacingOne) {
  const auto al =
      align_trials(make_trial({1, 2, 3, 4}), make_trial({2, 1, 3, 4}));
  const auto r = reorder_probability_by_spacing(al, 3);
  // Spacing 1: pairs (1,2) reordered -> 1 of 3.
  EXPECT_NEAR(r.probability[0], 1.0 / 3.0, 1e-12);
  EXPECT_EQ(r.probability[1], 0.0);
  EXPECT_EQ(r.probability[2], 0.0);
}

TEST(ReorderBySpacing, FullReversalIsCertain) {
  const auto al = align_trials(make_trial({1, 2, 3, 4, 5}),
                               make_trial({5, 4, 3, 2, 1}));
  const auto r = reorder_probability_by_spacing(al, 4);
  for (const double p : r.probability) EXPECT_EQ(p, 1.0);
}

TEST(ReorderBySpacing, BurstSwapDecaysWithSpacing) {
  // Two 3-packet bursts swapped: short-range pairs inside a burst stay
  // ordered; the reorder probability is concentrated at spacings that
  // straddle the swap.
  const auto al = align_trials(make_trial({1, 2, 3, 4, 5, 6}),
                               make_trial({4, 5, 6, 1, 2, 3}));
  const auto r = reorder_probability_by_spacing(al, 5);
  // Only the boundary pair (3,4) flips at spacing 1: 1 of 5 pairs.
  EXPECT_NEAR(r.probability[0], 0.2, 1e-12);
  EXPECT_GT(r.probability[2], 0.5);  // burst-length spacing flips
}

TEST(ReorderBySpacing, ValidatesInput) {
  const Trial a = make_trial({1, 2});
  const auto al = align_trials(a, a);
  EXPECT_THROW(reorder_probability_by_spacing(al, 0), Error);
}

TEST(ReorderBySpacing, TinyCommonSetsHandled) {
  const auto al = align_trials(make_trial({1}), make_trial({1}));
  const auto r = reorder_probability_by_spacing(al, 5);
  EXPECT_EQ(r.pairs_examined, 0u);
}

TEST(MoveBlocks, NoMovesIsOneFraction) {
  const Trial a = make_trial({1, 2, 3});
  const auto al = align_trials(a, a);
  EXPECT_TRUE(coalesce_move_blocks(al).empty());
  EXPECT_EQ(block_move_fraction(al), 1.0);
}

TEST(MoveBlocks, WholeBurstMovesAsOneBlock) {
  // 4,5,6 move together: Section 6.2's signature.
  const auto al = align_trials(make_trial({1, 2, 3, 4, 5, 6}),
                               make_trial({4, 5, 6, 1, 2, 3}));
  const auto blocks = coalesce_move_blocks(al);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].length, 3u);
  EXPECT_EQ(std::abs(blocks[0].displacement), 3);
  EXPECT_EQ(block_move_fraction(al), 1.0);
}

TEST(MoveBlocks, ScatteredSwapsDoNotCoalesce) {
  const auto al =
      align_trials(make_trial({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
                   make_trial({2, 1, 3, 4, 5, 6, 7, 8, 10, 9}));
  // Two isolated swaps far apart: single-move blocks only.
  EXPECT_EQ(block_move_fraction(al, 2), 0.0);
  EXPECT_EQ(coalesce_move_blocks(al).size(), al.moves.size());
}

TEST(MoveBlocks, InterleavedStreamBurstsStillCoalesce) {
  // A burst from one stream shifts as a unit while the other stream's
  // packets stay anchored between them — the dual-replayer pattern. The
  // moved packets are non-adjacent in B but form one logical block.
  // A: a1 b1 a2 b2 a3 b3 (ids: odd = stream a, even = stream b)
  // B: b1 a1 b2 a2 b3 a3 (stream a slips one slot later everywhere)
  const auto al = align_trials(make_trial({1, 2, 3, 4, 5, 6}),
                               make_trial({2, 1, 4, 3, 6, 5}));
  const auto blocks = coalesce_move_blocks(al);
  ASSERT_GE(blocks.size(), 1u);
  std::size_t largest = 0;
  for (const auto& b : blocks) largest = std::max<std::size_t>(largest, b.length);
  EXPECT_EQ(largest, al.moves.size());  // one block carries all moves
}

TEST(MoveBlocks, BlocksPartitionMoves) {
  const auto al = align_trials(
      make_trial({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
      make_trial({4, 5, 6, 1, 2, 3, 8, 7, 9, 10}));
  std::size_t total = 0;
  for (const auto& b : coalesce_move_blocks(al)) total += b.length;
  EXPECT_EQ(total, al.moves.size());
}

}  // namespace
}  // namespace choir::core
