// Replay-timing behaviour of the Choir middlebox: fidelity of recorded
// spacing, wall-clock start conversion, repeatability, and slip modeling.
#include <gtest/gtest.h>

#include "choir/middlebox.hpp"
#include "test_helpers.hpp"

namespace choir::app {
namespace {

using test::SinkEndpoint;
using test::make_frame;

net::NicConfig quiet() {
  net::NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  cfg.dma_pull_base = 300;
  return cfg;
}

ChoirConfig exact_choir() {
  ChoirConfig cfg;
  cfg.replayer_id = 10;
  cfg.loop_check_ns = 0.0;
  cfg.slip_rate_hz = 0.0;
  cfg.poll.interval = 500;
  cfg.poll.jitter_sigma_ns = 0.0;
  return cfg;
}

struct ReplayFixture : ::testing::Test {
  sim::EventQueue queue;
  net::Link in_stub{queue};
  net::Link out_link{queue, net::LinkConfig{0}};
  SinkEndpoint sink;
  net::PhysNic in_phys{queue, quiet(), Rng(1), in_stub};
  net::PhysNic out_phys{queue, quiet(), Rng(2), out_link};
  net::Vf& in_vf{in_phys.add_vf(pktio::mac_for_node(10), true)};
  net::Vf& out_vf{out_phys.add_vf(pktio::mac_for_node(10), true)};
  sim::NodeClock clock{sim::TscClock(2.5), sim::SystemClock()};
  pktio::Mempool pool{8192};

  ReplayFixture() { out_link.connect(sink); }

  // Record `n` packets spaced `gap` apart and return the middlebox ready
  // to replay them.
  std::unique_ptr<Middlebox> record(int n, Ns gap,
                                    ChoirConfig cfg = exact_choir(),
                                    std::uint64_t seed = 3) {
    auto mb = std::make_unique<Middlebox>(queue, clock, in_vf, out_vf, cfg,
                                          Rng(seed));
    mb->start();
    mb->start_record();
    for (int i = 0; i < n; ++i) {
      in_phys.deliver(make_frame(pool, 1400, i, 1, 4),
                      microseconds(10) + i * gap);
    }
    queue.run();
    mb->stop_record();
    sink.deliveries.clear();
    return mb;
  }
};

TEST_F(ReplayFixture, ReplaysEveryPacket) {
  auto mb = record(200, 280);
  mb->schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  EXPECT_EQ(sink.deliveries.size(), 200u);
  EXPECT_EQ(mb->stats().replayed_packets, 200u);
  EXPECT_FALSE(mb->replay_active());
}

TEST_F(ReplayFixture, ReproducesRecordedBurstSpacing) {
  auto mb = record(100, 2000);  // one packet per poll -> per burst
  const auto& bursts = mb->recording().bursts();
  ASSERT_GE(bursts.size(), 2u);
  mb->schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 100u);
  // Compare replayed wire spacing against recorded TSC spacing, burst by
  // burst. With exact pacing they match to within a few ns of rounding.
  std::size_t i = 1;
  for (std::size_t b = 1; b < bursts.size(); ++b) {
    const double recorded_gap =
        clock.tsc.ticks_to_ns(bursts[b].tsc - bursts[b - 1].tsc);
    const double replayed_gap = static_cast<double>(
        sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time);
    EXPECT_NEAR(replayed_gap, recorded_gap, 3.0);
    i += bursts[b].pkts.size();
  }
}

TEST_F(ReplayFixture, StartsAtRequestedWallTime) {
  auto mb = record(10, 280);
  const Ns wall_start = clock.system.read(queue.now()) + milliseconds(7);
  mb->schedule_replay(wall_start);
  queue.run();
  ASSERT_FALSE(sink.deliveries.empty());
  // First wire bit lands just after wall_start (+DMA +serialization).
  const Ns first = sink.deliveries[0].wire_time;
  EXPECT_GE(first, wall_start);
  EXPECT_LE(first, wall_start + microseconds(2));
}

TEST_F(ReplayFixture, ClockOffsetShiftsReplay) {
  auto mb = record(10, 280);
  // The replayer believes it is 1 ms ahead of true time: a command for
  // wall T fires 1 ms early in true time.
  clock.system.set_offset(queue.now(), 1e6);
  const Ns wall_start = clock.system.read(queue.now()) + milliseconds(5);
  mb->schedule_replay(wall_start);
  queue.run();
  const Ns first_true = sink.deliveries[0].wire_time;
  EXPECT_NEAR(static_cast<double>(first_true),
              static_cast<double>(wall_start) - 1e6, 2000.0);
}

TEST_F(ReplayFixture, RepeatedReplaysAreIdentical) {
  auto mb = record(150, 500);
  mb->schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  std::vector<Ns> first_run;
  for (const auto& d : sink.deliveries) first_run.push_back(d.wire_time);
  sink.deliveries.clear();

  mb->schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), first_run.size());
  // With all noise disabled, relative spacing matches exactly.
  for (std::size_t i = 1; i < first_run.size(); ++i) {
    const Ns gap_a = first_run[i] - first_run[i - 1];
    const Ns gap_b =
        sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time;
    EXPECT_EQ(gap_a, gap_b) << "at packet " << i;
  }
  EXPECT_EQ(mb->stats().replays_started, 2u);
}

TEST_F(ReplayFixture, SecondScheduleWhileActiveIgnored) {
  auto mb = record(1000, 280);
  const Ns wall = clock.system.read(queue.now());
  mb->schedule_replay(wall + milliseconds(1));
  mb->schedule_replay(wall + milliseconds(2));  // ignored: replay armed
  queue.run();
  EXPECT_EQ(mb->stats().replays_started, 1u);
  EXPECT_EQ(sink.deliveries.size(), 1000u);
}

TEST_F(ReplayFixture, LoopCheckGranularityBoundsJitter) {
  ChoirConfig cfg = exact_choir();
  cfg.loop_check_ns = 50.0;
  auto mb = record(100, 2000, cfg, /*seed=*/11);
  mb->schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  const auto& bursts = mb->recording().bursts();
  std::size_t i = 1;
  for (std::size_t b = 1; b < bursts.size(); ++b) {
    const double recorded_gap =
        clock.tsc.ticks_to_ns(bursts[b].tsc - bursts[b - 1].tsc);
    const double replayed_gap = static_cast<double>(
        sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time);
    // Each burst may fire up to one loop-check late.
    EXPECT_NEAR(replayed_gap, recorded_gap, 55.0);
    i += bursts[b].pkts.size();
  }
}

TEST_F(ReplayFixture, SlipsDelayButNeverReorder) {
  ChoirConfig cfg = exact_choir();
  cfg.slip_rate_hz = 50'000.0;  // aggressive preemption
  cfg.slip_mu_log_ns = std::log(30'000.0);
  cfg.slip_sigma_log = 0.5;
  auto mb = record(500, 500, cfg, /*seed=*/12);
  mb->schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 500u);
  for (std::size_t i = 0; i < 500; ++i) {
    EXPECT_EQ(sink.deliveries[i].payload_token, i);
  }
}

TEST_F(ReplayFixture, PastStartTimeReplaysImmediately) {
  auto mb = record(10, 280);
  const Ns now_before = queue.now();
  mb->schedule_replay(clock.system.read(queue.now()) - seconds(1));
  queue.run();
  EXPECT_EQ(sink.deliveries.size(), 10u);
  EXPECT_LE(sink.deliveries[0].wire_time, now_before + microseconds(10));
}

}  // namespace
}  // namespace choir::app
