#include "analysis/report.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace choir::analysis {
namespace {

TEST(FormatMetric, ZeroIsBareZero) {
  EXPECT_EQ(format_metric(0.0), "0");
}

TEST(FormatMetric, SmallValuesScientific) {
  EXPECT_EQ(format_metric(2.62e-6), "2.62e-06");
  EXPECT_EQ(format_metric(-4.82e-5), "-4.82e-05");
}

TEST(FormatMetric, OrdinaryValuesFixed) {
  EXPECT_EQ(format_metric(0.9853), "0.9853");
  EXPECT_EQ(format_metric(0.0294), "0.0294");
}

TEST(MetricsCells, Table2ColumnOrder) {
  core::ConsistencyMetrics m;
  m.uniqueness = 0.0;
  m.ordering = 0.0259;
  m.iat = 0.2022;
  m.latency = 9.68e-3;
  m.kappa = 0.9282;
  const auto cells = metrics_cells(m);
  ASSERT_EQ(cells.size(), 5u);
  EXPECT_EQ(cells[0], "0");        // U
  EXPECT_EQ(cells[1], "0.0259");   // O
  EXPECT_EQ(cells[2], "0.2022");   // I
  EXPECT_EQ(cells[3], "0.0097");   // L
  EXPECT_EQ(cells[4], "0.9282");   // kappa
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"Env", "kappa"});
  t.add_row({"local-single", "0.9853"});
  t.add_row({"x", "1"});
  const std::string s = t.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  // Every line same width.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t next = s.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  const std::string s = t.str();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(TextTable, ContainsMarkdownRule) {
  TextTable t({"h"});
  t.add_row({"v"});
  EXPECT_NE(t.str().find("|--"), std::string::npos);
}

}  // namespace
}  // namespace choir::analysis
