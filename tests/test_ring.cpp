#include "pktio/ring.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "pktio/mbuf.hpp"

namespace choir::pktio {
namespace {

TEST(Ring, FifoOrder) {
  Mempool pool(8);
  Ring ring(8);
  Mbuf* in[8];
  for (int i = 0; i < 8; ++i) in[i] = pool.alloc();
  EXPECT_EQ(ring.enqueue_burst(in, 8), 8);
  Mbuf* out[8];
  EXPECT_EQ(ring.dequeue_burst(out, 8), 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i], in[i]);
    Mempool::release(out[i]);
  }
}

TEST(Ring, PartialEnqueueWhenNearlyFull) {
  Mempool pool(8);
  Ring ring(4);
  Mbuf* in[6];
  for (int i = 0; i < 6; ++i) in[i] = pool.alloc();
  EXPECT_EQ(ring.enqueue_burst(in, 6), 4);
  EXPECT_TRUE(ring.full());
  Mbuf* out[8];
  EXPECT_EQ(ring.dequeue_burst(out, 8), 4);
  for (int i = 0; i < 4; ++i) Mempool::release(out[i]);
  Mempool::release(in[4]);
  Mempool::release(in[5]);
}

TEST(Ring, DequeueFromEmpty) {
  Ring ring(4);
  Mbuf* out[4];
  EXPECT_EQ(ring.dequeue_burst(out, 4), 0);
  EXPECT_EQ(ring.dequeue(), nullptr);
}

TEST(Ring, SingleEnqueueDequeue) {
  Mempool pool(1);
  Ring ring(2);
  Mbuf* m = pool.alloc();
  EXPECT_TRUE(ring.enqueue(m));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.dequeue(), m);
  EXPECT_TRUE(ring.empty());
  Mempool::release(m);
}

TEST(Ring, WrapAroundPreservesOrder) {
  Mempool pool(4);
  Ring ring(4);
  // Push/pop repeatedly so indices wrap the power-of-two storage.
  for (int round = 0; round < 100; ++round) {
    Mbuf* a = pool.alloc();
    Mbuf* b = pool.alloc();
    ASSERT_TRUE(ring.enqueue(a));
    ASSERT_TRUE(ring.enqueue(b));
    ASSERT_EQ(ring.dequeue(), a);
    ASSERT_EQ(ring.dequeue(), b);
    Mempool::release(a);
    Mempool::release(b);
  }
}

TEST(Ring, NonPowerOfTwoCapacityHonored) {
  Mempool pool(8);
  Ring ring(5);  // storage rounds to 8, capacity stays 5
  EXPECT_EQ(ring.capacity(), 5u);
  Mbuf* in[8];
  for (int i = 0; i < 8; ++i) in[i] = pool.alloc();
  EXPECT_EQ(ring.enqueue_burst(in, 8), 5);
  Mbuf* out[8];
  EXPECT_EQ(ring.dequeue_burst(out, 8), 5);
  for (int i = 0; i < 5; ++i) Mempool::release(out[i]);
  for (int i = 5; i < 8; ++i) Mempool::release(in[i]);
}

TEST(Ring, ZeroCapacityRejected) {
  EXPECT_THROW(Ring(0), Error);
}

}  // namespace
}  // namespace choir::pktio
