#include "common/rng.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "common/expect.hpp"

#include <gtest/gtest.h>

namespace choir {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-5.0, 11.0);
    ASSERT_GE(u, -5.0);
    ASSERT_LT(u, 11.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64CoversRangeWithoutBias) {
  Rng rng(6);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(10)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(Rng, UniformU64RejectsZero) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform_u64(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndSigma) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(10);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ParetoRejectsBadParameters) {
  Rng rng(11);
  EXPECT_THROW(rng.pareto(0.0, 1.0), Error);
  EXPECT_THROW(rng.pareto(1.0, 0.0), Error);
}

TEST(Rng, LognormalMedian) {
  Rng rng(12);
  const int n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(std::log(500.0), 0.8);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  // Median of lognormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(xs[n / 2], 500.0, 25.0);
}

TEST(Rng, ChanceProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(14);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(15), p2(15);
  Rng a = p1.split(9);
  Rng b = p2.split(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, Splitmix64KnownValue) {
  // Reference value from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t v = splitmix64(state);
  EXPECT_EQ(state, 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(v, 0xe220a8397b1dcdafULL);
}

TEST(Rng, NoShortCycles) {
  Rng rng(16);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(seen.insert(rng.next_u64()).second) << "cycle at " << i;
  }
}

}  // namespace
}  // namespace choir
