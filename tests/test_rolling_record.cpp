// Rolling recording and the breakpoint primitive (Section 4 future work).
#include <gtest/gtest.h>

#include "choir/middlebox.hpp"
#include "pktio/headers.hpp"
#include "test_helpers.hpp"
#include "trace/tag.hpp"

namespace choir::app {
namespace {

using test::make_frame;
using test::SinkEndpoint;

net::NicConfig quiet() {
  net::NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  return cfg;
}

TEST(RollingRecording, KeepsMostRecentPackets) {
  pktio::Mempool pool(64);
  Recording rec(8, Recording::Mode::kRolling);
  for (int burst = 0; burst < 10; ++burst) {
    pktio::Mbuf* pkts[2] = {pool.alloc(), pool.alloc()};
    pkts[0]->frame.payload_token = static_cast<std::uint64_t>(2 * burst);
    pkts[1]->frame.payload_token = static_cast<std::uint64_t>(2 * burst + 1);
    EXPECT_TRUE(rec.add_burst(1000 + burst, pkts, 2));
    pktio::Mempool::release(pkts[0]);
    pktio::Mempool::release(pkts[1]);
  }
  EXPECT_EQ(rec.packet_count(), 8u);
  EXPECT_EQ(rec.evicted_packets(), 12u);
  // The oldest surviving packet is number 12 (bursts 0..5 evicted).
  EXPECT_EQ(rec.bursts().front().pkts[0]->frame.payload_token, 12u);
  EXPECT_EQ(rec.bursts().back().pkts[1]->frame.payload_token, 19u);
}

TEST(RollingRecording, EvictionReleasesBuffers) {
  pktio::Mempool pool(16);
  Recording rec(4, Recording::Mode::kRolling);
  for (int i = 0; i < 16; ++i) {
    pktio::Mbuf* one[1] = {pool.alloc()};
    ASSERT_NE(one[0], nullptr) << "evictions must recycle buffers";
    rec.add_burst(static_cast<std::uint64_t>(i), one, 1);
    pktio::Mempool::release(one[0]);
  }
  EXPECT_EQ(rec.packet_count(), 4u);
  // 4 held by the recording; the rest back in the pool.
  EXPECT_EQ(pool.available(), pool.capacity() - 4);
}

TEST(BoundedRecording, RefusesBeyondCapacity) {
  pktio::Mempool pool(16);
  Recording rec(4, Recording::Mode::kBounded);
  for (int i = 0; i < 8; ++i) {
    pktio::Mbuf* one[1] = {pool.alloc()};
    const bool accepted = rec.add_burst(static_cast<std::uint64_t>(i), one, 1);
    EXPECT_EQ(accepted, i < 4);
    pktio::Mempool::release(one[0]);
  }
  EXPECT_EQ(rec.packet_count(), 4u);
  EXPECT_EQ(rec.evicted_packets(), 0u);
}

TEST(RollingRecording, BurstLargerThanCapacityRejected) {
  pktio::Mempool pool(8);
  Recording rec(2, Recording::Mode::kRolling);
  pktio::Mbuf* pkts[4];
  for (auto& p : pkts) p = pool.alloc();
  EXPECT_FALSE(rec.add_burst(1, pkts, 4));
  for (auto* p : pkts) pktio::Mempool::release(p);
  EXPECT_EQ(rec.packet_count(), 0u);
}

TEST(RollingRecording, ConfigureOnlyWhileEmpty) {
  pktio::Mempool pool(8);
  Recording rec(100, Recording::Mode::kBounded);
  rec.configure(4, Recording::Mode::kRolling);
  EXPECT_EQ(rec.capacity(), 4u);
  pktio::Mbuf* one[1] = {pool.alloc()};
  rec.add_burst(1, one, 1);
  pktio::Mempool::release(one[0]);
  rec.configure(999, Recording::Mode::kBounded);  // ignored: not empty
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.mode(), Recording::Mode::kRolling);
}

struct BreakpointFixture : ::testing::Test {
  sim::EventQueue queue;
  net::Link in_stub{queue};
  net::Link out_link{queue, net::LinkConfig{0}};
  SinkEndpoint sink;
  net::PhysNic in_phys{queue, quiet(), Rng(1), in_stub};
  net::PhysNic out_phys{queue, quiet(), Rng(2), out_link};
  net::Vf& in_vf{in_phys.add_vf(pktio::mac_for_node(10), true)};
  net::Vf& out_vf{out_phys.add_vf(pktio::mac_for_node(10), true)};
  sim::NodeClock clock{sim::TscClock(2.5), sim::SystemClock()};
  pktio::Mempool pool{4096};

  ChoirConfig rolling_cfg(std::size_t window) {
    ChoirConfig cfg;
    cfg.rolling_record = true;
    cfg.max_recorded_packets = window;
    cfg.poll.jitter_sigma_ns = 0.0;
    cfg.loop_check_ns = 0.0;
    return cfg;
  }

  BreakpointFixture() { out_link.connect(sink); }
};

TEST_F(BreakpointFixture, RollingMiddleboxNeverOverflows) {
  Middlebox mb(queue, clock, in_vf, out_vf, rolling_cfg(50), Rng(3));
  mb.start();
  mb.start_record();
  for (int i = 0; i < 500; ++i) {
    in_phys.deliver(make_frame(pool, 1400, i, 1, 4),
                    microseconds(10) + i * 280);
  }
  queue.run();
  EXPECT_EQ(mb.stats().record_overflow, 0u);
  EXPECT_LE(mb.recording().packet_count(), 50u);
  // The window holds the most recent traffic.
  const auto& last_burst = mb.recording().bursts().back();
  EXPECT_EQ(last_burst.pkts.back()->frame.payload_token, 499u);
}

TEST_F(BreakpointFixture, BreakpointFreezesBacktrace) {
  Middlebox mb(queue, clock, in_vf, out_vf, rolling_cfg(64), Rng(4));
  mb.start();
  mb.start_record();
  // Trip on the packet whose token is 300.
  mb.set_breakpoint([](const pktio::Frame& frame) {
    return frame.payload_token == 300;
  });
  for (int i = 0; i < 500; ++i) {
    in_phys.deliver(make_frame(pool, 1400, i, 1, 4),
                    microseconds(10) + i * 280);
  }
  queue.run();
  EXPECT_EQ(mb.stats().breakpoint_hits, 1u);
  EXPECT_FALSE(mb.recording_active());
  EXPECT_FALSE(mb.breakpoint_armed());
  // The recording ends at (or within a burst of) the trigger and holds
  // the traffic leading up to it.
  const auto& bursts = mb.recording().bursts();
  const std::uint64_t last = bursts.back().pkts.back()->frame.payload_token;
  EXPECT_GE(last, 300u);
  EXPECT_LE(last, 310u);  // within one burst of the trigger
  const std::uint64_t first =
      bursts.front().pkts.front()->frame.payload_token;
  EXPECT_GE(first, 300u - 64u);
}

TEST_F(BreakpointFixture, BacktraceIsReplayable) {
  Middlebox mb(queue, clock, in_vf, out_vf, rolling_cfg(32), Rng(5));
  mb.start();
  mb.start_record();
  mb.set_breakpoint([](const pktio::Frame& frame) {
    return frame.payload_token == 100;
  });
  for (int i = 0; i < 200; ++i) {
    in_phys.deliver(make_frame(pool, 1400, i, 1, 4),
                    microseconds(10) + i * 280);
  }
  queue.run();
  const std::size_t window = mb.recording().packet_count();
  ASSERT_GT(window, 0u);
  sink.deliveries.clear();
  mb.schedule_replay(clock.system.read(queue.now()) + milliseconds(1));
  queue.run();
  EXPECT_EQ(sink.deliveries.size(), window);
}

TEST_F(BreakpointFixture, UnmatchedBreakpointStaysArmed) {
  Middlebox mb(queue, clock, in_vf, out_vf, rolling_cfg(32), Rng(6));
  mb.start();
  mb.start_record();
  mb.set_breakpoint([](const pktio::Frame& frame) {
    return frame.payload_token == 99999;
  });
  for (int i = 0; i < 100; ++i) {
    in_phys.deliver(make_frame(pool, 1400, i, 1, 4),
                    microseconds(10) + i * 280);
  }
  queue.run();
  EXPECT_EQ(mb.stats().breakpoint_hits, 0u);
  EXPECT_TRUE(mb.breakpoint_armed());
  EXPECT_TRUE(mb.recording_active());
}

}  // namespace
}  // namespace choir::app
