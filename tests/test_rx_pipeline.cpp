#include "net/rx_pipeline.hpp"

#include <gtest/gtest.h>

namespace choir::net {
namespace {

NicConfig quiet_config() {
  NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  return cfg;
}

TEST(RxPipeline, PassThroughWhenQuiet) {
  sim::EventQueue q;
  RxPipeline pipe(q, quiet_config(), Rng(1));
  const auto a = pipe.admit(1000, 1400);
  EXPECT_TRUE(a.accepted);
  EXPECT_EQ(a.release, 1000);
  EXPECT_EQ(a.timestamp, 1000);
}

TEST(RxPipeline, DrainGapEnforcedAfterBacklog) {
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  RxPipeline pipe(q, cfg, Rng(2));
  // Two frames arriving closer than line-rate drain spacing: the second
  // is pushed out by the 112 ns serialization of the first.
  const auto a = pipe.admit(1000, 1400);
  const auto b = pipe.admit(1001, 1400);
  EXPECT_EQ(a.release, 1000);
  EXPECT_EQ(b.release, 1000 + 112);
}

TEST(RxPipeline, StallHoldsThenDrains) {
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.stall_rate_hz = 1e9;  // a stall fires essentially immediately
  cfg.stall_mu_log_ns = std::log(50'000.0);
  cfg.stall_sigma_log = 1e-6;  // deterministic ~50 us duration
  RxPipeline pipe(q, cfg, Rng(3));
  q.run_until(10);  // let the first stall event fire
  ASSERT_GT(pipe.stalled_until(), q.now());
  const Ns stall_end = pipe.stalled_until();

  const auto a = pipe.admit(q.now(), 1400);
  EXPECT_GE(a.release, stall_end);
  // Next packets drain back-to-back at line rate after the stall.
  const auto b = pipe.admit(q.now() + 280, 1400);
  EXPECT_EQ(b.release, a.release + 112);
}

TEST(RxPipeline, OrderIsAlwaysPreserved) {
  // The key property behind O = 0 on FABRIC: stalls batch but never
  // reorder.
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.stall_rate_hz = 20000;
  cfg.stall_mu_log_ns = std::log(20'000.0);
  cfg.stall_sigma_log = 0.8;
  RxPipeline pipe(q, cfg, Rng(4));
  Ns prev_release = -1;
  for (int i = 0; i < 20000; ++i) {
    const Ns arrival = i * 280;
    q.run_until(arrival);
    const auto adm = pipe.admit(arrival, 1400);
    if (!adm.accepted) continue;
    ASSERT_GE(adm.release, prev_release);
    prev_release = adm.release;
  }
  EXPECT_GT(pipe.stall_events(), 0u);
}

TEST(RxPipeline, StagingOverflowDropsTail) {
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.rx_buffer_pkts = 8;
  cfg.stall_rate_hz = 1e9;
  cfg.stall_mu_log_ns = std::log(1e6);  // 1 ms stall
  cfg.stall_sigma_log = 1e-6;
  RxPipeline pipe(q, cfg, Rng(5));
  q.run_until(10);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (pipe.admit(q.now() + i, 1400).accepted) ++accepted;
  }
  EXPECT_EQ(accepted, 8);  // staging fills to capacity, rest tail-drop
  EXPECT_EQ(pipe.overflow_drops(), 92u);
}

TEST(RxPipeline, StagedCountDrainsOverTime) {
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.stall_rate_hz = 1e9;
  cfg.stall_mu_log_ns = std::log(100'000.0);
  cfg.stall_sigma_log = 1e-6;
  RxPipeline pipe(q, cfg, Rng(6));
  q.run_until(10);
  for (int i = 0; i < 10; ++i) pipe.admit(q.now() + i, 1400);
  EXPECT_GT(pipe.staged(), 0u);
  q.run_until(seconds(1));
  EXPECT_EQ(pipe.staged(), 0u);
}

TEST(RxPipeline, TinyControlFrameNotFalselyDropped) {
  // Regression: the staging check must count packets, not divide backlog
  // time by this frame's (tiny) drain gap.
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.rx_buffer_pkts = 1000;
  cfg.stall_rate_hz = 1e9;
  cfg.stall_mu_log_ns = std::log(200'000.0);  // 200 us stall
  cfg.stall_sigma_log = 1e-6;
  RxPipeline pipe(q, cfg, Rng(7));
  q.run_until(10);
  const auto adm = pipe.admit(q.now(), 64);  // lone 64-byte control frame
  EXPECT_TRUE(adm.accepted);
}

TEST(RxPipeline, TimestampNoiseIsBounded) {
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.ts_noise_sigma_ns = 5.0;
  RxPipeline pipe(q, cfg, Rng(8));
  double max_abs = 0;
  for (int i = 0; i < 5000; ++i) {
    const Ns arrival = i * 1000;
    const auto adm = pipe.admit(arrival, 1400);
    max_abs = std::max(max_abs,
                       std::abs(static_cast<double>(adm.timestamp - arrival)));
  }
  EXPECT_GT(max_abs, 1.0);    // noise present
  EXPECT_LT(max_abs, 50.0);   // ~5 sigma bound + quantum
}

TEST(RxPipeline, TimestampQuantization) {
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.ts_quantum_ns = 8;
  RxPipeline pipe(q, cfg, Rng(9));
  for (int i = 0; i < 100; ++i) {
    const auto adm = pipe.admit(i * 997, 1400);
    EXPECT_EQ(adm.timestamp % 8, 0);
  }
}

TEST(RxPipeline, WanderShiftsTimestampsSlowly) {
  sim::EventQueue q;
  NicConfig cfg = quiet_config();
  cfg.wander_sigma_ns = 1000.0;
  cfg.wander_interval = milliseconds(1);
  RxPipeline pipe(q, cfg, Rng(10));
  // Adjacent packets share almost the same wander; distant ones differ.
  const auto a = pipe.admit(seconds(0.00), 1400);
  const auto b = pipe.admit(seconds(0.00) + 280, 1400);
  const auto far = pipe.admit(seconds(0.05), 1400);
  const double near_delta = std::abs(
      static_cast<double>((b.timestamp - b.release) - (a.timestamp - a.release)));
  EXPECT_LT(near_delta, 20.0);
  // Far packet has an independent wander draw; typically different.
  const double far_offset =
      std::abs(static_cast<double>(far.timestamp - far.release));
  (void)far_offset;  // existence checked; magnitude is stochastic
}

}  // namespace
}  // namespace choir::net
