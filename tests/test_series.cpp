// Unit tests for the time-series observability plane: the MetricSeries
// ring, SeriesSampler cadence determinism, the series.jsonl/Prometheus
// exporters, jobs-independence of the exported bytes, the sampler's
// zero-perturbation contract, and the telemetry-dir summary behind
// `choirctl stats <dir>`.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/export.hpp"
#include "analysis/telemetry_dir.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"
#include "testbed/experiment.hpp"
#include "testbed/presets.hpp"

namespace choir {
namespace {

// ---- MetricSeries ring -------------------------------------------------

TEST(MetricSeries, FillsThenWrapsOverwritingOldest) {
  telemetry::MetricSeries s(4);
  for (int i = 0; i < 4; ++i) s.push(Ns{i * 10}, static_cast<double>(i));
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total(), 4u);
  EXPECT_EQ(s.at(0).value, 0.0);
  EXPECT_EQ(s.back().value, 3.0);

  // Two more pushes drop the two oldest points.
  s.push(Ns{40}, 4.0);
  s.push(Ns{50}, 5.0);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total(), 6u);
  EXPECT_EQ(s.at(0).value, 2.0);
  EXPECT_EQ(s.at(0).t, 20);
  EXPECT_EQ(s.at(3).value, 5.0);
  EXPECT_EQ(s.back().t, 50);

  const auto points = s.points();
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].t, points[i].t) << "points must stay ordered";
  }
}

TEST(MetricSeries, WrapManyTimesKeepsFreshestWindow) {
  telemetry::MetricSeries s(3);
  for (int i = 0; i < 100; ++i) s.push(Ns{i}, static_cast<double>(i));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.total(), 100u);
  EXPECT_EQ(s.at(0).value, 97.0);
  EXPECT_EQ(s.at(1).value, 98.0);
  EXPECT_EQ(s.at(2).value, 99.0);
}

TEST(MetricSeries, ZeroCapacityClampsToOne) {
  telemetry::MetricSeries s(0);
  EXPECT_EQ(s.capacity(), 1u);
  s.push(Ns{1}, 1.0);
  s.push(Ns{2}, 2.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.back().value, 2.0);
}

// ---- SeriesSampler cadence --------------------------------------------

/// Drive a registry deterministically on a queue and sample it; running
/// the identical schedule twice must produce identical series.
std::string sampled_series_text(std::size_t capacity) {
  sim::EventQueue queue;
  telemetry::Registry registry;
  telemetry::Counter& packets = registry.counter("packets");
  telemetry::Gauge& depth = registry.gauge("queue.depth");
  telemetry::LatencyHistogram& lat = registry.histogram("latency_ns");
  for (int i = 1; i <= 40; ++i) {
    queue.schedule_at(Ns{i * 1000}, [&, i] {
      packets.add(static_cast<std::uint64_t>(i));
      depth.set(i % 7);
      lat.record(static_cast<std::uint64_t>(i * 3));
    });
  }
  telemetry::SeriesConfig cfg;
  cfg.interval = Ns{4000};
  cfg.capacity = capacity;
  telemetry::SeriesSampler sampler(queue, registry, cfg);
  sampler.start();
  queue.run_until(Ns{40'000});
  sampler.sample_now();
  return analysis::render_series_jsonl(sampler) +
         analysis::render_prometheus_text(sampler);
}

TEST(SeriesSampler, CadenceIsDeterministic) {
  const std::string a = sampled_series_text(4096);
  const std::string b = sampled_series_text(4096);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"name\":\"packets\""), std::string::npos);
  EXPECT_NE(a.find("\"name\":\"latency_ns.p999\""), std::string::npos);
  EXPECT_NE(a.find("# TYPE choir_packets counter"), std::string::npos);
  EXPECT_NE(a.find("# TYPE choir_queue_depth gauge"), std::string::npos);
}

TEST(SeriesSampler, SamplesOnTheConfiguredInterval) {
  sim::EventQueue queue;
  telemetry::Registry registry;
  registry.counter("c").add(1);
  telemetry::SeriesConfig cfg;
  cfg.interval = Ns{1000};
  telemetry::SeriesSampler sampler(queue, registry, cfg);
  sampler.start();
  queue.run_until(Ns{10'500});
  // Ticks at 1000, 2000, ..., 10000.
  EXPECT_EQ(sampler.samples_taken(), 10u);
  const auto& entries = sampler.entries();
  ASSERT_EQ(entries.count("c"), 1u);
  const telemetry::MetricSeries& series = entries.at("c").series;
  ASSERT_EQ(series.size(), 10u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ(series.at(i).t, static_cast<Ns>((i + 1) * 1000));
    EXPECT_EQ(series.at(i).value, 1.0);
  }
  EXPECT_EQ(entries.at("c").kind, telemetry::SeriesKind::kCounter);
}

TEST(SeriesSampler, RingWrapUnderLongRun) {
  // Capacity 8 over 40 ticks: the exporter must emit exactly the 8
  // freshest points and report all 40 in `total`.
  const std::string text = sampled_series_text(8);
  EXPECT_NE(text.find("\"total\":11"), std::string::npos)
      << "10 ticks + final sample_now";
  sim::EventQueue queue;
  telemetry::Registry registry;
  telemetry::Counter& c = registry.counter("c");
  for (int i = 1; i <= 40; ++i) {
    queue.schedule_at(Ns{i * 100}, [&c] { c.add(1); });
  }
  telemetry::SeriesConfig cfg;
  cfg.interval = Ns{100};
  cfg.capacity = 8;
  telemetry::SeriesSampler sampler(queue, registry, cfg);
  sampler.start();
  queue.run_until(Ns{4000});
  const telemetry::MetricSeries& series = sampler.entries().at("c").series;
  EXPECT_EQ(series.total(), 40u);
  ASSERT_EQ(series.size(), 8u);
  EXPECT_EQ(series.at(0).t, 3300);
  EXPECT_EQ(series.back().t, 4000);
}

// ---- Full-experiment determinism (the CI cmp gate in miniature) --------

testbed::ExperimentConfig series_config(int eval_jobs) {
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_single();
  cfg.packets = 2000;
  cfg.runs = 3;
  cfg.seed = 7;
  cfg.collect_series = false;
  cfg.eval_jobs = eval_jobs;
  cfg.telemetry.enabled = true;
  cfg.telemetry.series_interval = milliseconds(1);
  return cfg;
}

TEST(SeriesDeterminism, ArtifactBytesIndependentOfJobs) {
  const auto seq = testbed::run_experiment(series_config(1));
  const auto par = testbed::run_experiment(series_config(4));
  ASSERT_NE(seq.telemetry_series, nullptr);
  ASSERT_NE(par.telemetry_series, nullptr);
  EXPECT_GT(seq.telemetry_series->samples_taken(), 0u);
  EXPECT_EQ(analysis::render_series_jsonl(*seq.telemetry_series),
            analysis::render_series_jsonl(*par.telemetry_series));
  EXPECT_EQ(analysis::render_prometheus_text(*seq.telemetry_series),
            analysis::render_prometheus_text(*par.telemetry_series));
}

TEST(SeriesDeterminism, SamplerOnOffIsBitIdentical) {
  testbed::ExperimentConfig off = series_config(1);
  off.telemetry.series_interval = 0;
  const auto r_off = testbed::run_experiment(off);
  const auto r_on = testbed::run_experiment(series_config(1));
  EXPECT_EQ(r_off.telemetry_series, nullptr);
  EXPECT_EQ(r_off.mean.kappa, r_on.mean.kappa);
  EXPECT_EQ(r_off.mean.latency, r_on.mean.latency);
  EXPECT_EQ(r_off.recorded_packets, r_on.recorded_packets);
  EXPECT_EQ(r_off.capture_sizes, r_on.capture_sizes);
}

// ---- Telemetry-dir summary (`choirctl stats <dir>`) --------------------

class TelemetryDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("choir_tdir_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void touch(const std::string& name, const std::string& content = {}) {
    std::filesystem::create_directories(dir_);
    std::ofstream out(dir_ / name, std::ios::binary);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(TelemetryDirTest, MissingDirectory) {
  const auto summary = analysis::summarize_telemetry_dir(dir_.string());
  EXPECT_EQ(summary.status, analysis::TelemetryDirStatus::kMissingDir);
  EXPECT_NE(summary.text.find("does not exist"), std::string::npos);
}

TEST_F(TelemetryDirTest, PresentButEmptyIsDistinctFromMissing) {
  touch("counters.jsonl");  // zero bytes
  touch("histograms.csv");  // zero bytes
  const auto summary = analysis::summarize_telemetry_dir(dir_.string());
  EXPECT_EQ(summary.status, analysis::TelemetryDirStatus::kEmpty);
  EXPECT_EQ(summary.artifacts_present, 2u);
  EXPECT_EQ(summary.artifacts_nonempty, 0u);
  // The summary still lists the empty artifacts and prints the (empty)
  // gauge/histogram sections instead of bailing with "no artifacts".
  EXPECT_NE(summary.text.find("counters.jsonl"), std::string::npos);
  EXPECT_NE(summary.text.find("-- gauges --"), std::string::npos);
  EXPECT_NE(summary.text.find("-- latency histograms"), std::string::npos);
  EXPECT_NE(summary.text.find("every artifact is empty"), std::string::npos);
}

TEST_F(TelemetryDirTest, PresentWithNoArtifactsIsEmptyToo) {
  std::filesystem::create_directories(dir_);
  const auto summary = analysis::summarize_telemetry_dir(dir_.string());
  EXPECT_EQ(summary.status, analysis::TelemetryDirStatus::kEmpty);
  EXPECT_EQ(summary.artifacts_present, 0u);
  EXPECT_NE(summary.text.find("holds no telemetry artifacts"),
            std::string::npos);
}

TEST_F(TelemetryDirTest, NonEmptyArtifactsAreOk) {
  touch("counters.jsonl", "{\"at\":0}\n");
  touch("series.jsonl", "{\"name\":\"x\"}\n");
  touch("metrics.prom", "# TYPE choir_x counter\nchoir_x 1\n");
  const auto summary = analysis::summarize_telemetry_dir(dir_.string());
  EXPECT_EQ(summary.status, analysis::TelemetryDirStatus::kOk);
  EXPECT_EQ(summary.artifacts_nonempty, 3u);
  EXPECT_NE(summary.text.find("series.jsonl"), std::string::npos);
  EXPECT_NE(summary.text.find("metrics.prom"), std::string::npos);
}

}  // namespace
}  // namespace choir
