// Unit tests for the host-time span profiler: deterministic fake-clock
// aggregation (total/self/child/max), nesting, the bounded span buffer,
// the ScopedProfiler install stack, and the render/CSV/tracer exports.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/expect.hpp"
#include "telemetry/span_profiler.hpp"
#include "telemetry/tracer.hpp"

namespace choir::telemetry {
namespace {

TEST(SpanProfiler, AggregatesSelfAndChildTime) {
  SpanProfiler p;
  // Drive the lifecycle with explicit timestamps: outer [0, 100] with a
  // nested inner [10, 40].
  p.enter("outer", 0);
  p.enter("inner", 10);
  p.exit(40);
  p.exit(100);

  const auto& aggregates = p.aggregates();
  ASSERT_TRUE(aggregates.count("outer"));
  ASSERT_TRUE(aggregates.count("inner"));
  const auto& outer = aggregates.at("outer");
  const auto& inner = aggregates.at("inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(outer.total_ns, 100u);
  EXPECT_EQ(outer.child_ns, 30u);
  EXPECT_EQ(outer.self_ns(), 70u);
  EXPECT_EQ(outer.max_ns, 100u);
  EXPECT_EQ(inner.total_ns, 30u);
  EXPECT_EQ(inner.child_ns, 0u);
  EXPECT_EQ(inner.self_ns(), 30u);
}

TEST(SpanProfiler, SummarySortedBySelfTimeDescending) {
  SpanProfiler p;
  p.enter("small", 0);
  p.exit(10);
  p.enter("large", 20);
  p.exit(220);
  p.enter("mid", 300);
  p.exit(350);
  const auto summary = p.summary();
  ASSERT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary[0].name, "large");
  EXPECT_EQ(summary[1].name, "mid");
  EXPECT_EQ(summary[2].name, "small");
}

TEST(SpanProfiler, RepeatedSpansAccumulateAndTrackMax) {
  SpanProfiler p;
  std::uint64_t t = 0;
  for (std::uint64_t dur : {5u, 50u, 20u}) {
    p.enter("hot", t);
    p.exit(t + dur);
    t += dur + 1;
  }
  const auto& agg = p.aggregates().at("hot");
  EXPECT_EQ(agg.count, 3u);
  EXPECT_EQ(agg.total_ns, 75u);
  EXPECT_EQ(agg.max_ns, 50u);
}

TEST(SpanProfiler, BoundedSpanBufferDropsButAggregatesExactly) {
  SpanProfiler p(/*max_spans=*/2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    p.enter("s", i * 10);
    p.exit(i * 10 + 3);
  }
  EXPECT_EQ(p.dropped_spans(), 3u);
  EXPECT_EQ(p.aggregates().at("s").count, 5u);  // aggregates never drop
  EXPECT_EQ(p.aggregates().at("s").total_ns, 15u);
}

TEST(SpanProfiler, FakeTimeSourceDrivesNowNs) {
  SpanProfiler p;
  std::uint64_t fake = 1000;
  p.set_time_source([&fake] { return fake; });
  const std::uint64_t t0 = p.now_ns();
  fake += 250;
  EXPECT_EQ(p.now_ns(), t0 + 250);
}

TEST(SpanProfiler, ScopedInstallAndDisabledNoOp) {
  EXPECT_EQ(SpanProfiler::current(), nullptr);
  {
    // With no profiler installed a ProfileSpan is a harmless no-op.
    ProfileSpan idle("nobody-listens");
  }
  SpanProfiler outer_p;
  {
    ScopedProfiler outer(&outer_p);
    EXPECT_EQ(SpanProfiler::current(), &outer_p);
    SpanProfiler inner_p;
    {
      ScopedProfiler inner(&inner_p);
      EXPECT_EQ(SpanProfiler::current(), &inner_p);
      ProfileSpan span("probe");
    }
    EXPECT_EQ(SpanProfiler::current(), &outer_p);
    EXPECT_EQ(inner_p.aggregates().count("probe"), 1u);
    EXPECT_EQ(outer_p.aggregates().count("probe"), 0u);
  }
  EXPECT_EQ(SpanProfiler::current(), nullptr);
}

TEST(SpanProfiler, RendersTableAndCsv) {
  SpanProfiler p;
  p.enter("replay.pace", 0);
  p.exit(1000);
  p.enter("record.drain", 2000);
  p.exit(2500);
  const std::string table = p.render_table();
  EXPECT_NE(table.find("replay.pace"), std::string::npos);
  EXPECT_NE(table.find("record.drain"), std::string::npos);
  std::ostringstream csv;
  p.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("name,count,total_ns,self_ns"), std::string::npos);
  EXPECT_NE(text.find("record.drain,1,500,500"), std::string::npos);
}

TEST(SpanProfiler, ExportsSpansToTracerTrack) {
  SpanProfiler p;
  p.enter("kappa.compute", 100);
  p.exit(400);
  Tracer tracer;
  p.export_to_tracer(tracer);
  bool found_track = false;
  for (const auto& track : tracer.tracks()) {
    if (track.find("profiler") != std::string::npos) found_track = true;
  }
  EXPECT_TRUE(found_track);
  std::ostringstream out;
  tracer.write_chrome_json(out);
  EXPECT_NE(out.str().find("kappa.compute"), std::string::npos);
}

TEST(SpanProfiler, MergeFromFoldsWorkerAggregates) {
  // Worker-scoped profilers (one per parallel evaluation task) are
  // folded into the session profiler after the join; aggregates must be
  // sample-exact across the merge.
  SpanProfiler session;
  session.enter("kappa.compare", 0);
  session.exit(100);

  SpanProfiler worker;
  worker.enter("kappa.compare", 0);
  worker.exit(250);
  worker.enter("kappa.align", 300);
  worker.exit(340);

  session.merge_from(worker);
  bool saw_compare = false, saw_align = false;
  for (const auto& entry : session.summary()) {
    if (entry.name == "kappa.compare") {
      saw_compare = true;
      EXPECT_EQ(entry.agg.count, 2u);
      EXPECT_EQ(entry.agg.total_ns, 350u);
      EXPECT_EQ(entry.agg.max_ns, 250u);
    } else if (entry.name == "kappa.align") {
      saw_align = true;
      EXPECT_EQ(entry.agg.count, 1u);
      EXPECT_EQ(entry.agg.total_ns, 40u);
    }
  }
  EXPECT_TRUE(saw_compare);
  EXPECT_TRUE(saw_align);
}

TEST(SpanProfiler, MergeFromRejectsOpenSpans) {
  SpanProfiler session;
  SpanProfiler worker;
  worker.enter("open", 0);  // never exited
  EXPECT_THROW(session.merge_from(worker), Error);
}

}  // namespace
}  // namespace choir::telemetry
