#include "analysis/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/stats.hpp"

namespace choir::analysis {
namespace {

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const SummaryStats s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, SummarizeEmpty) {
  const SummaryStats s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SummarizeSingleValue) {
  const std::vector<double> v{42.0};
  const SummaryStats s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Stats, SummarizeInt64) {
  const std::vector<std::int64_t> v{-10, 0, 10};
  const SummaryStats s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -10.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(Stats, SummarizeAbsMatchesTable1Semantics) {
  // Table 1 reports both signed Mean and Abs. Mean of move distances.
  const std::vector<std::int64_t> v{-5632, 16573, -100, 100};
  const SummaryStats signed_stats = summarize(v);
  const SummaryStats abs_stats = summarize_abs(v);
  EXPECT_NEAR(signed_stats.mean, (16573.0 - 5632.0) / 4.0, 1e-9);
  EXPECT_NEAR(abs_stats.mean, (5632.0 + 16573.0 + 200.0) / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(abs_stats.min, 100.0);
  EXPECT_DOUBLE_EQ(abs_stats.max, 16573.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 5.0);
}

TEST(Stats, P999Exactness) {
  // 1001 evenly spaced points 0..1000: the (n-1) rank grid puts p99.9
  // at rank 0.999 * 1000 = 999 -> value 999, and the mirrored low-tail
  // helper at rank 1 -> value 1. The tolerance absorbs only the
  // representation error of 99.9/100 (~1e-13 in the rank).
  std::vector<double> v(1001);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  EXPECT_NEAR(stats::p999_sorted(v), 999.0, 1e-9);
  EXPECT_NEAR(stats::p999_low_sorted(v), 1.0, 1e-9);
  // Degenerate sizes collapse to the envelope, never out of range.
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(stats::p999_sorted(one), 7.0);
  EXPECT_DOUBLE_EQ(stats::p999_low_sorted(one), 7.0);
  const std::vector<double> two{1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::p999_sorted(two), 1.0 + 2.0 * 0.999);
  EXPECT_DOUBLE_EQ(stats::p999_low_sorted(two), 1.0 + 2.0 * 0.001);
}

TEST(Stats, PercentileUnsortedInput) {
  std::vector<double> v{40, 0, 30, 10, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 20.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile({1.0}, 101), Error);
  EXPECT_THROW(percentile({1.0}, -1), Error);
}

TEST(Stats, FractionWithin) {
  const std::vector<double> v{-15, -5, 0, 5, 15};
  EXPECT_DOUBLE_EQ(fraction_within(v, 10.0), 0.6);
  EXPECT_DOUBLE_EQ(fraction_within(v, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_within(v, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(fraction_within(std::vector<double>{}, 1.0), 1.0);
}

}  // namespace
}  // namespace choir::analysis
