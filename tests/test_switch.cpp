#include "net/switch.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "test_helpers.hpp"

namespace choir::net {
namespace {

using test::SinkEndpoint;
using test::make_frame;

SwitchConfig instant() {
  SwitchConfig cfg;
  cfg.processing_delay = 100;
  cfg.processing_jitter_sigma_ns = 0.0;
  return cfg;
}

struct SwitchFixture : ::testing::Test {
  sim::EventQueue queue;
  pktio::Mempool pool{256};
};

TEST_F(SwitchFixture, PortForwardMovesFrames) {
  Switch sw(queue, instant(), Rng(1));
  const auto in = sw.add_port();
  const auto out = sw.add_port();
  sw.set_port_forward(in, out);
  SinkEndpoint sink;
  sw.egress_link(out).connect(sink);

  sw.ingress(in).deliver(make_frame(pool, 1400, 7), 1000);
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].payload_token, 7u);
  // 100 ns pipeline + 112 ns egress serialization + default 50 ns cable.
  EXPECT_EQ(sink.deliveries[0].wire_time, 1000 + 100 + 112 + 50);
  EXPECT_EQ(sw.forwarded(), 1u);
}

TEST_F(SwitchFixture, MacRouteUsedWithoutPortForward) {
  Switch sw(queue, instant(), Rng(2));
  const auto in = sw.add_port();
  const auto out_a = sw.add_port();
  const auto out_b = sw.add_port();
  sw.set_mac_route(pktio::mac_for_node(5), out_a);
  sw.set_mac_route(pktio::mac_for_node(6), out_b);
  SinkEndpoint sink_a, sink_b;
  sw.egress_link(out_a).connect(sink_a);
  sw.egress_link(out_b).connect(sink_b);

  sw.ingress(in).deliver(make_frame(pool, 1400, 1, 1, 5), 0);
  sw.ingress(in).deliver(make_frame(pool, 1400, 2, 1, 6), 300);
  sw.ingress(in).deliver(make_frame(pool, 1400, 3, 1, 6), 600);
  queue.run();
  EXPECT_EQ(sink_a.deliveries.size(), 1u);
  EXPECT_EQ(sink_b.deliveries.size(), 2u);
}

TEST_F(SwitchFixture, PortForwardOverridesMacRoute) {
  Switch sw(queue, instant(), Rng(3));
  const auto in = sw.add_port();
  const auto fwd = sw.add_port();
  const auto mac_port = sw.add_port();
  sw.set_port_forward(in, fwd);
  sw.set_mac_route(pktio::mac_for_node(5), mac_port);
  SinkEndpoint s_fwd, s_mac;
  sw.egress_link(fwd).connect(s_fwd);
  sw.egress_link(mac_port).connect(s_mac);
  sw.ingress(in).deliver(make_frame(pool, 1400, 1, 1, 5), 0);
  queue.run();
  EXPECT_EQ(s_fwd.deliveries.size(), 1u);
  EXPECT_TRUE(s_mac.deliveries.empty());
}

TEST_F(SwitchFixture, UnroutableFramesDrop) {
  Switch sw(queue, instant(), Rng(4));
  const auto in = sw.add_port();
  sw.add_port();
  sw.ingress(in).deliver(make_frame(pool, 1400, 1, 1, 42), 0);
  queue.run();
  EXPECT_EQ(sw.unroutable_drops(), 1u);
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST_F(SwitchFixture, BadFcsDiscardedAtIngress) {
  Switch sw(queue, instant(), Rng(5));
  const auto in = sw.add_port();
  const auto out = sw.add_port();
  sw.set_port_forward(in, out);
  SinkEndpoint sink;
  sw.egress_link(out).connect(sink);
  pktio::Mbuf* bad = make_frame(pool, 1400, 1);
  bad->frame.invalid_fcs = true;
  sw.ingress(in).deliver(bad, 0);
  sw.ingress(in).deliver(make_frame(pool, 1400, 2), 300);
  queue.run();
  EXPECT_EQ(sw.fcs_drops(), 1u);
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].payload_token, 2u);
}

TEST_F(SwitchFixture, TwoIngressStreamsMergeInOrder) {
  // The dual-replayer topology: two inputs forwarded to one output.
  Switch sw(queue, instant(), Rng(6));
  const auto in1 = sw.add_port();
  const auto in2 = sw.add_port();
  const auto out = sw.add_port();
  sw.set_port_forward(in1, out);
  sw.set_port_forward(in2, out);
  SinkEndpoint sink;
  sw.egress_link(out).connect(sink);

  for (int i = 0; i < 10; ++i) {
    sw.ingress(i % 2 == 0 ? in1 : in2)
        .deliver(make_frame(pool, 1400, i), i * 280);
  }
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sink.deliveries[i].payload_token, static_cast<std::uint64_t>(i));
  }
  // Egress wire never overlaps frames.
  for (int i = 1; i < 10; ++i) {
    EXPECT_GE(sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time,
              112);
  }
}

TEST_F(SwitchFixture, OutputQueueTailDropsUnderOverload) {
  SwitchConfig cfg = instant();
  cfg.port_queue_pkts = 8;
  Switch sw(queue, cfg, Rng(7));
  const auto in = sw.add_port();
  const auto out = sw.add_port();
  sw.set_port_forward(in, out);
  SinkEndpoint sink;
  sw.egress_link(out).connect(sink);
  // 100 frames all arriving at once into one 100 G egress.
  for (int i = 0; i < 100; ++i) {
    sw.ingress(in).deliver(make_frame(pool, 1400, i), 0);
  }
  queue.run();
  EXPECT_GT(sw.queue_drops(), 0u);
  EXPECT_LT(sink.deliveries.size(), 100u);
  EXPECT_EQ(sink.deliveries.size() + sw.queue_drops(), 100u);
}

TEST_F(SwitchFixture, InvalidPortConfigurationThrows) {
  Switch sw(queue, instant(), Rng(8));
  sw.add_port();
  EXPECT_THROW(sw.set_port_forward(0, 5), Error);
  EXPECT_THROW(sw.set_mac_route(pktio::mac_for_node(1), 9), Error);
}

}  // namespace
}  // namespace choir::net
