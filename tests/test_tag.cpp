#include "trace/tag.hpp"

#include <gtest/gtest.h>

namespace choir::trace {
namespace {

TEST(Tag, EncodeDecodeRoundTrip) {
  const Tag tag{/*replayer=*/10, /*stream=*/3, /*sequence=*/0x0123456789abcdefULL};
  const auto trailer = encode_tag(tag);
  const auto decoded = decode_tag(trailer);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, tag);
}

TEST(Tag, MagicGuardsDecode) {
  auto trailer = encode_tag(Tag{1, 2, 3});
  trailer[0] ^= 0xff;
  EXPECT_FALSE(decode_tag(trailer).has_value());
}

TEST(Tag, ZeroTagValid) {
  const auto decoded = decode_tag(encode_tag(Tag{}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, Tag{});
}

TEST(Tag, ExtremeValuesSurvive) {
  const Tag tag{0xffff, 0xffffffff, 0xffffffffffffffffULL};
  EXPECT_EQ(*decode_tag(encode_tag(tag)), tag);
}

TEST(Tag, StampSetsTrailer) {
  pktio::Frame frame;
  frame.wire_len = 1400;
  EXPECT_FALSE(frame.has_trailer);
  stamp(frame, Tag{7, 1, 99});
  EXPECT_TRUE(frame.has_trailer);
  EXPECT_EQ(decode_tag(frame.trailer)->sequence, 99u);
}

TEST(Tag, PacketIdsDistinctAcrossFields) {
  const auto base = packet_id_of(Tag{1, 1, 1});
  EXPECT_NE(packet_id_of(Tag{2, 1, 1}), base);  // replayer differs
  EXPECT_NE(packet_id_of(Tag{1, 2, 1}), base);  // stream differs
  EXPECT_NE(packet_id_of(Tag{1, 1, 2}), base);  // sequence differs
}

TEST(Tag, PacketIdDeterministic) {
  EXPECT_EQ(packet_id_of(Tag{3, 4, 5}), packet_id_of(Tag{3, 4, 5}));
}

TEST(Tag, SequentialSequencesSequentialIds) {
  // The replayer stamps consecutive sequence numbers; ids must track.
  for (std::uint64_t s = 0; s < 100; ++s) {
    EXPECT_EQ(packet_id_of(Tag{1, 0, s}).lo, s);
  }
}

}  // namespace
}  // namespace choir::trace
