// TaskPool: the determinism contract of the parallel execution layer.
//
// Everything downstream (suite fan-out, parallel κ evaluation) leans on
// three properties exercised here: results land by submission index no
// matter which worker finishes first, jobs == 1 reproduces the
// sequential path exactly (inline, in order, exceptions at the call
// site), and nested fan-out composes instead of deadlocking. All
// adversarial scheduling is driven by spin work, not sleeps, so the
// suite stays fast under plain ctest and clean under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/task_pool.hpp"

namespace choir {
namespace {

/// Busy work the optimizer cannot elide; long enough to spread tasks
/// across workers, short enough to keep the test instant.
void spin(std::uint64_t iterations) {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iterations; ++i) sink = sink + i;
}

TEST(TaskPoolTest, ResultsLandBySubmissionIndex) {
  // Adversarial durations: the first-submitted task spins longest, so
  // with completion-order results the vector would come out reversed.
  constexpr std::size_t kTasks = 32;
  std::vector<std::size_t> out(kTasks, 0);
  TaskPool pool(4);
  for (std::size_t i = 0; i < kTasks; ++i) {
    const std::size_t index = pool.submit([&out, i] {
      spin((kTasks - i) * 20'000);
      out[i] = i + 1;
    });
    EXPECT_EQ(index, i);
  }
  pool.wait();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(out[i], i + 1) << "slot " << i;
  }
}

TEST(TaskPoolTest, PoolIsReusableAcrossWaits) {
  TaskPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.submit([&total] { total.fetch_add(1); });
    }
    pool.wait();
    EXPECT_EQ(total.load(), 8 * (round + 1));
  }
}

TEST(TaskPoolTest, ExceptionOfLowestIndexWins) {
  // Several tasks fail; wait() must surface the lowest submission index
  // regardless of which worker hit its failure first.
  TaskPool pool(4);
  for (std::size_t i = 0; i < 12; ++i) {
    pool.submit([i] {
      spin((12 - i) * 10'000);
      if (i == 2 || i == 5 || i == 9) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
  }
  try {
    pool.wait();
    FAIL() << "wait() did not rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 2");
  }
  // Captured errors are consumed by wait(); the pool keeps working.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait();
  EXPECT_TRUE(ran.load());
}

TEST(TaskPoolTest, Jobs1RunsInlineInSubmissionOrder) {
  // No worker threads: tasks run on the submitting thread before
  // submit() returns, so side effects are visible immediately and
  // strictly ordered — the historical sequential path.
  TaskPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
    EXPECT_EQ(order.size(), static_cast<std::size_t>(i + 1));
  }
  pool.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TaskPoolTest, Jobs1PropagatesExceptionsAtTheCallSite) {
  TaskPool pool(1);
  EXPECT_THROW(pool.submit([] { throw std::logic_error("inline"); }),
               std::logic_error);
  // The failed task still counts as completed; wait() has nothing left.
  pool.wait();
}

TEST(TaskPoolTest, NestedSubmissionRejected) {
  // submit() from a worker thread could deadlock a fixed pool; it must
  // throw instead (parallel_for_indexed is the composing alternative).
  TaskPool pool(2);
  std::atomic<bool> threw{false};
  pool.submit([&pool, &threw] {
    EXPECT_TRUE(TaskPool::on_worker_thread());
    try {
      pool.submit([] {});
    } catch (const Error&) {
      threw = true;
    }
  });
  pool.wait();
  EXPECT_TRUE(threw.load());
}

TEST(TaskPoolTest, ParallelForFallsBackInlineOnWorkers) {
  // A task that itself calls parallel_for_indexed must not deadlock:
  // on a worker thread the nested loop runs inline.
  TaskPool pool(2);
  std::atomic<int> inner_total{0};
  pool.submit([&inner_total] {
    EXPECT_FALSE(will_fan_out(4, 8));
    parallel_for_indexed(4, 8,
                         [&inner_total](std::size_t) { inner_total++; });
  });
  pool.wait();
  EXPECT_EQ(inner_total.load(), 8);
}

TEST(TaskPoolTest, ParallelMapKeepsIndexOrder) {
  const auto out = parallel_map_indexed<std::size_t>(
      4, 24, [](std::size_t i) {
        spin((24 - i) * 20'000);
        return i * 10;
      });
  ASSERT_EQ(out.size(), 24u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 10);
}

TEST(TaskPoolTest, ResolveJobsHonorsRequestThenEnvThenHardware) {
  EXPECT_EQ(resolve_jobs(3), 3);
  EXPECT_EQ(resolve_jobs(1), 1);

  ASSERT_EQ(setenv("CHOIR_JOBS", "5", 1), 0);
  EXPECT_EQ(resolve_jobs(0), 5);
  EXPECT_EQ(resolve_jobs(2), 2);  // explicit request beats the env

  ASSERT_EQ(setenv("CHOIR_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(resolve_jobs(0), 1);  // garbage env falls through to hardware

  ASSERT_EQ(unsetenv("CHOIR_JOBS"), 0);
  EXPECT_GE(resolve_jobs(0), 1);
}

TEST(TaskPoolTest, WillFanOutRequiresMultipleTasksAndJobs) {
  EXPECT_FALSE(will_fan_out(4, 0));
  EXPECT_FALSE(will_fan_out(4, 1));
  EXPECT_FALSE(will_fan_out(1, 100));
  EXPECT_TRUE(will_fan_out(4, 2));
}

TEST(TaskPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> done{0};
  {
    TaskPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&done] {
        spin(10'000);
        done.fetch_add(1);
      });
    }
    // No wait(): the destructor must drain the queue before joining.
  }
  EXPECT_EQ(done.load(), 16);
}

}  // namespace
}  // namespace choir
