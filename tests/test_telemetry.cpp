// Unit tests for the telemetry subsystem: registry instruments, the
// log2-bucketed latency histogram, the Chrome-tracing exporter, the
// sampler, and the ScopedTelemetry session / null-handle machinery.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "sim/event_queue.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/telemetry.hpp"

namespace choir::telemetry {
namespace {

// ---- Registry ----------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableInstruments) {
  Registry registry;
  Counter& a = registry.counter("x.count");
  a.add(3);
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g = registry.gauge("x.level");
  g.set(-5);
  EXPECT_EQ(registry.gauge("x.level").value(), -5);
  g.set_max(2);
  EXPECT_EQ(g.value(), 2);
  g.set_max(-7);  // lower than current: no change
  EXPECT_EQ(g.value(), 2);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha").add(2);
  registry.counter("mid.dle").add(3);
  registry.gauge("b").set(9);
  registry.gauge("a").set(8);

  const Snapshot s = registry.snapshot(Ns{42});
  EXPECT_EQ(s.at, 42);
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].first, "alpha");
  EXPECT_EQ(s.counters[1].first, "mid.dle");
  EXPECT_EQ(s.counters[2].first, "zeta");
  ASSERT_EQ(s.gauges.size(), 2u);
  EXPECT_EQ(s.gauges[0].first, "a");
  EXPECT_EQ(s.gauges[1].first, "b");
}

// ---- LatencyHistogram bucket math --------------------------------------

TEST(LatencyHistogram, BucketBoundaries) {
  // Values below 16 are exact unit buckets.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_lo(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_width(v), 1u);
  }
  // The first sub-bucketed range starts exactly at 16.
  EXPECT_EQ(LatencyHistogram::bucket_index(16), 16u);
  EXPECT_EQ(LatencyHistogram::bucket_lo(16), 16u);
  // Power-of-two boundaries land on the first sub-bucket of their range.
  for (int msb = 4; msb < 63; ++msb) {
    const std::uint64_t v = 1ull << msb;
    const std::size_t i = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(LatencyHistogram::bucket_lo(i), v) << "msb=" << msb;
    // The value one below the boundary falls in the previous bucket.
    EXPECT_EQ(LatencyHistogram::bucket_index(v - 1), i - 1) << "msb=" << msb;
  }
  // Every bucket index round-trips through its own lower bound.
  for (std::size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_index(LatencyHistogram::bucket_lo(i)),
              i);
  }
  // The largest representable value maps to the last bucket.
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ull),
            LatencyHistogram::kBucketCount - 1);
}

TEST(LatencyHistogram, RelativeErrorBoundedBySubBuckets) {
  // Any value's bucket spans at most value/16 in width (above the exact
  // range), which bounds the percentile quantization error.
  for (std::uint64_t v : {17ull, 100ull, 999ull, 12345ull, 1ull << 40}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    const std::uint64_t lo = LatencyHistogram::bucket_lo(i);
    const std::uint64_t w = LatencyHistogram::bucket_width(i);
    EXPECT_LE(lo, v);
    EXPECT_LT(v, lo + w);
    EXPECT_LE(w, v / 8 + 1);  // comfortably within 2x of the 1/16 bound
  }
}

// ---- LatencyHistogram percentiles --------------------------------------

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(50.0), 0);
  EXPECT_EQ(h.percentile(100.0), 0);
}

TEST(LatencyHistogram, SingleSampleIsExactAtEveryPercentile) {
  LatencyHistogram h;
  h.record(12345);  // mid-bucket value; the [min,max] clamp makes it exact
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 12345);
  EXPECT_EQ(h.max(), 12345);
  EXPECT_EQ(h.percentile(0.0), 12345);
  EXPECT_EQ(h.percentile(50.0), 12345);
  EXPECT_EQ(h.percentile(99.9), 12345);
  EXPECT_EQ(h.percentile(100.0), 12345);
}

TEST(LatencyHistogram, P0AndP100ReturnTrackedEnvelopeExactly) {
  // The extreme ranks bypass the bucket midpoint entirely: p0 is the
  // tracked min and p100 the tracked max, even when both values sit in
  // the middle of wide buckets whose midpoints differ from them.
  LatencyHistogram h;
  const Ns lo = 100003;  // not a bucket boundary
  const Ns hi = 900007;
  h.record(hi);
  h.record(lo);
  for (int i = 0; i < 100; ++i) h.record(500000);
  EXPECT_EQ(h.percentile(0.0), lo);
  EXPECT_EQ(h.percentile(100.0), hi);
  // Sanity: midpoints of the envelope buckets are not the raw values,
  // so the equalities above prove the exact path was taken.
  const auto lo_bucket = LatencyHistogram::bucket_index(lo);
  const std::uint64_t lo_mid =
      LatencyHistogram::bucket_lo(lo_bucket) +
      (LatencyHistogram::bucket_width(lo_bucket) - 1) / 2;
  EXPECT_NE(static_cast<Ns>(lo_mid), lo);
}

TEST(LatencyHistogram, OutOfRangeAndNanPercentilesClamp) {
  LatencyHistogram h;
  for (int i = 1; i <= 10; ++i) h.record(i * 1000);
  EXPECT_EQ(h.percentile(-5.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(-5.0), h.min());
  EXPECT_EQ(h.percentile(250.0), h.percentile(100.0));
  EXPECT_EQ(h.percentile(250.0), h.max());
  EXPECT_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), h.min());
}

TEST(LatencyHistogram, MaxSaturatesInsteadOfOverflowing) {
  LatencyHistogram h;
  const Ns huge = std::numeric_limits<Ns>::max();
  h.record(huge);
  h.record(1);
  EXPECT_EQ(h.max(), huge);
  EXPECT_EQ(h.min(), 1);
  // p100 is clamped to the exact max even though the top bucket is wide.
  EXPECT_EQ(h.percentile(100.0), huge);
}

TEST(LatencyHistogram, NegativeDurationsClampToZero) {
  LatencyHistogram h;
  h.record(-50);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogram, PercentilesOrderedOnUniformData) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 100);
  const auto s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Quantization keeps each percentile within ~1/16 of the true value.
  EXPECT_NEAR(static_cast<double>(s.p50), 50000.0, 50000.0 / 8);
  EXPECT_NEAR(static_cast<double>(s.p90), 90000.0, 90000.0 / 8);
  EXPECT_NEAR(static_cast<double>(s.p99), 99000.0, 99000.0 / 8);
}

// ---- Tracer ------------------------------------------------------------

// Minimal structural JSON check: balanced delimiters outside strings and
// no trailing comma before a closer.
void expect_well_formed_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  char prev_significant = '\0';
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
        prev_significant = '"';
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      continue;
    }
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      EXPECT_NE(prev_significant, ',') << "trailing comma at offset " << i;
    }
    EXPECT_GE(depth, 0);
    if (!std::isspace(static_cast<unsigned char>(c))) prev_significant = c;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(Tracer, ChromeJsonIsWellFormed) {
  Tracer tracer;
  const std::uint32_t mb = tracer.track("middlebox.0");
  tracer.span("record", Ns{1000}, Ns{5500}, 0);
  tracer.instant("wake \"quoted\"\n", Ns{2001}, mb);
  tracer.span("replay", Ns{7000}, Ns{9123}, mb,
              "{\"bursts\":3}");
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string text = out.str();
  expect_well_formed_json(text);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  // ts is exported in microseconds with ns precision: 1000ns -> 1.000.
  EXPECT_NE(text.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(text.find("\"dur\":4.500"), std::string::npos);
  // The quoted/newlined name survives escaping.
  EXPECT_NE(text.find("wake \\\"quoted\\\"\\n"), std::string::npos);
  EXPECT_NE(text.find("\"bursts\":3"), std::string::npos);
}

TEST(Tracer, TrackZeroIsExperimentAndTracksDedupe) {
  Tracer tracer;
  EXPECT_EQ(tracer.tracks().size(), 1u);
  EXPECT_EQ(tracer.tracks()[0], "experiment");
  const auto a = tracer.track("recorder");
  const auto b = tracer.track("recorder");
  EXPECT_EQ(a, b);
  EXPECT_EQ(tracer.tracks().size(), 2u);
}

TEST(Tracer, DropsPastTheEventCap) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("e" + std::to_string(i), Ns{i});
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  std::ostringstream out;
  tracer.write_chrome_json(out);
  expect_well_formed_json(out.str());
}

// ---- Sampler -----------------------------------------------------------

TEST(Sampler, SamplesPeriodicallyOnSimTime) {
  sim::EventQueue queue;
  Registry registry;
  Counter& c = registry.counter("ticks");
  Sampler sampler(queue, registry, milliseconds(1));
  sampler.start();
  // A mutation mid-way; later snapshots must observe it.
  queue.schedule_at(microseconds(2500), [&c] { c.add(7); });
  queue.run_until(milliseconds(4) + microseconds(500));
  sampler.sample_now();

  ASSERT_EQ(sampler.samples().size(), 5u);  // 1,2,3,4ms + final
  EXPECT_EQ(sampler.samples()[0].at, milliseconds(1));
  EXPECT_EQ(sampler.samples()[3].at, milliseconds(4));
  EXPECT_EQ(sampler.samples()[1].counters[0].second, 0u);  // t=2ms
  EXPECT_EQ(sampler.samples()[2].counters[0].second, 7u);  // t=3ms
}

TEST(Sampler, StopHaltsRescheduling) {
  sim::EventQueue queue;
  Registry registry;
  Sampler sampler(queue, registry, milliseconds(1));
  sampler.start();
  queue.schedule_at(microseconds(1500), [&sampler] { sampler.stop(); });
  queue.run_until(milliseconds(10));
  EXPECT_EQ(sampler.samples().size(), 1u);
}

// ---- Session / handles -------------------------------------------------

TEST(ScopedTelemetry, NullHandlesWithoutSession) {
  ASSERT_EQ(Registry::current(), nullptr);
  CounterHandle c = counter("orphan");
  GaugeHandle g = gauge("orphan");
  HistogramHandle h = histogram("orphan");
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
  // All no-ops, no crash.
  c.add();
  g.set(1);
  h.record(5);
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(track("anything"), 0u);
}

TEST(ScopedTelemetry, InstallsAndNests) {
  Registry outer_registry;
  Tracer outer_tracer;
  {
    ScopedTelemetry outer(&outer_registry, &outer_tracer);
    EXPECT_EQ(Registry::current(), &outer_registry);
    counter("hits").add(2);
    {
      Registry inner_registry;
      ScopedTelemetry inner(&inner_registry, nullptr);
      EXPECT_EQ(Registry::current(), &inner_registry);
      EXPECT_EQ(Tracer::current(), nullptr);
      counter("hits").add(40);
      EXPECT_EQ(inner_registry.counter("hits").value(), 40u);
    }
    EXPECT_EQ(Registry::current(), &outer_registry);
    EXPECT_EQ(Tracer::current(), &outer_tracer);
  }
  EXPECT_EQ(Registry::current(), nullptr);
  EXPECT_EQ(outer_registry.counter("hits").value(), 2u);
}

// ---- merge_from (worker-scoped sessions) -------------------------------

TEST(Registry, MergeFromAddsCountersMaxesGaugesAndFoldsHistograms) {
  Registry agg;
  agg.counter("shared").add(10);
  agg.gauge("depth").set_max(7);
  agg.histogram("lat").record(100);

  Registry worker;
  worker.counter("shared").add(5);
  worker.counter("worker_only").add(2);
  worker.gauge("depth").set_max(3);   // below the aggregate's reading
  worker.gauge("other").set_max(11);  // new instrument
  worker.histogram("lat").record(200);
  worker.histogram("lat").record(300);

  agg.merge_from(worker);
  EXPECT_EQ(agg.counter("shared").value(), 15u);
  EXPECT_EQ(agg.counter("worker_only").value(), 2u);
  EXPECT_EQ(agg.gauge("depth").value(), 7);
  EXPECT_EQ(agg.gauge("other").value(), 11);
  const auto s = agg.histogram("lat").summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.min, 100);
  EXPECT_EQ(s.max, 300);
}

TEST(LatencyHistogram, MergeFromIsSampleExact) {
  LatencyHistogram a;
  a.record(10);
  a.record(1000);
  LatencyHistogram b;
  b.record(5);
  b.record(50'000);

  LatencyHistogram reference;
  for (const std::int64_t v : {10, 1000, 5, 50'000}) reference.record(v);

  a.merge_from(b);
  const auto merged = a.summary();
  const auto expected = reference.summary();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.min, expected.min);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.p50, expected.p50);
  EXPECT_EQ(merged.p99, expected.p99);

  // Merging an empty histogram changes nothing (min stays honest).
  LatencyHistogram empty;
  a.merge_from(empty);
  EXPECT_EQ(a.summary().count, expected.count);
  EXPECT_EQ(a.summary().min, expected.min);
}

}  // namespace
}  // namespace choir::telemetry
