// Zero-perturbation regression: a seeded experiment must be bit-identical
// whether telemetry is enabled or not, and an enabled run must actually
// produce the promised coverage (per-port counters, ring high-water
// marks, latency histograms, record/replay trace spans, artifacts).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "testbed/experiment.hpp"

namespace choir::testbed {
namespace {

ExperimentConfig small(bool telemetry, const std::string& dir = {}) {
  ExperimentConfig cfg;
  cfg.env = local_single();
  cfg.packets = 4000;
  cfg.runs = 3;
  cfg.seed = 7;
  cfg.telemetry.enabled = telemetry;
  cfg.telemetry.dir = dir;
  return cfg;
}

bool has_trace_event(const telemetry::Tracer& tracer,
                     const std::string& name) {
  const auto& events = tracer.events();
  return std::any_of(events.begin(), events.end(),
                     [&](const auto& e) { return e.name == name; });
}

TEST(TelemetryDeterminism, MetricsBitIdenticalWithTelemetryOnOrOff) {
  const auto off = run_experiment(small(false));
  const auto on = run_experiment(small(true));

  EXPECT_EQ(off.recorded_packets, on.recorded_packets);
  EXPECT_EQ(off.capture_sizes, on.capture_sizes);
  ASSERT_EQ(off.comparisons.size(), on.comparisons.size());
  for (std::size_t i = 0; i < off.comparisons.size(); ++i) {
    const auto& a = off.comparisons[i];
    const auto& b = on.comparisons[i];
    // Bitwise equality, not near-equality: telemetry must not perturb a
    // single packet timestamp anywhere in the pipeline.
    EXPECT_EQ(a.metrics.kappa, b.metrics.kappa);
    EXPECT_EQ(a.metrics.uniqueness, b.metrics.uniqueness);
    EXPECT_EQ(a.metrics.ordering, b.metrics.ordering);
    EXPECT_EQ(a.metrics.iat, b.metrics.iat);
    EXPECT_EQ(a.metrics.latency, b.metrics.latency);
    EXPECT_EQ(a.common, b.common);
    EXPECT_EQ(a.moved, b.moved);
    ASSERT_EQ(a.series.iat_delta_ns.size(), b.series.iat_delta_ns.size());
    EXPECT_EQ(a.series.iat_delta_ns, b.series.iat_delta_ns);
    EXPECT_EQ(a.series.latency_delta_ns, b.series.latency_delta_ns);
  }
  EXPECT_EQ(off.mean.kappa, on.mean.kappa);

  // Disabled runs carry no telemetry state.
  EXPECT_EQ(off.telemetry_registry, nullptr);
  EXPECT_EQ(off.telemetry_trace, nullptr);
  EXPECT_TRUE(off.telemetry_samples.empty());
}

TEST(TelemetryDeterminism, EnabledRunCoversThePipeline) {
  const auto result = run_experiment(small(true));
  ASSERT_NE(result.telemetry_registry, nullptr);
  ASSERT_NE(result.telemetry_trace, nullptr);
  const auto& registry = *result.telemetry_registry;
  const auto& counters = registry.counters();
  const auto& gauges = registry.gauges();
  const auto& histograms = registry.histograms();

  // Per-port burst counters from pktio::EthDev.
  ASSERT_TRUE(counters.count("port.choir-in.10.rx_packets"));
  EXPECT_GE(counters.at("port.choir-in.10.rx_packets").value(), 4000u);
  ASSERT_TRUE(counters.count("port.choir-out.10.tx_bursts"));
  EXPECT_GT(counters.at("port.choir-out.10.tx_bursts").value(), 0u);
  ASSERT_TRUE(counters.count("port.recorder.rx_packets"));
  // Recorder sees the forwarded stream plus every replay.
  EXPECT_GE(counters.at("port.recorder.rx_packets").value(), 3u * 4000u);

  // Ring occupancy high-water marks (VF RX rings, TX backlogs).
  ASSERT_TRUE(gauges.count("nic.recorder.vf0.rx_ring_hwm"));
  EXPECT_GT(gauges.at("nic.recorder.vf0.rx_ring_hwm").value(), 0);
  EXPECT_TRUE(gauges.count("txport.repl0-out.backlog_hwm"));

  // Latency histograms: middlebox forward latency and pacing error.
  ASSERT_TRUE(histograms.count("middlebox.10.forward_latency_ns"));
  EXPECT_EQ(histograms.at("middlebox.10.forward_latency_ns").count(), 4000u);
  ASSERT_TRUE(histograms.count("middlebox.10.pacing_error_ns"));
  EXPECT_GT(histograms.at("middlebox.10.pacing_error_ns").count(), 0u);
  EXPECT_TRUE(histograms.count("nic.repl0-out.dma_pull_delay_ns"));

  // Trace spans for the record window and every replayed run.
  const auto& tracer = *result.telemetry_trace;
  EXPECT_TRUE(has_trace_event(tracer, "record"));
  EXPECT_TRUE(has_trace_event(tracer, "replay"));
  EXPECT_TRUE(has_trace_event(tracer, "replay-burst"));
  EXPECT_TRUE(has_trace_event(tracer, "capture-window"));
  EXPECT_TRUE(has_trace_event(tracer, "record-phase"));
  EXPECT_TRUE(has_trace_event(tracer, "run-2"));
  EXPECT_EQ(tracer.dropped(), 0u);

  // Sampled time series: one snapshot per period plus the final one,
  // monotone in sim time.
  ASSERT_GT(result.telemetry_samples.size(), 2u);
  for (std::size_t i = 1; i < result.telemetry_samples.size(); ++i) {
    EXPECT_GE(result.telemetry_samples[i].at,
              result.telemetry_samples[i - 1].at);
  }
}

TEST(TelemetryDeterminism, WritesArtifactsWhenDirSet) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "choir-telemetry").string();
  std::filesystem::remove_all(dir);
  run_experiment(small(true, dir));
  for (const char* name : {"counters.jsonl", "histograms.csv", "trace.json"}) {
    const auto path = std::filesystem::path(dir) / name;
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 0u) << path;
  }
  std::ifstream trace(std::filesystem::path(dir) / "trace.json");
  std::string head;
  std::getline(trace, head);
  EXPECT_EQ(head.rfind("{\"displayTimeUnit\":\"ns\"", 0), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace choir::testbed
