#include "trace/trace_file.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "core/metrics.hpp"
#include "trace/tag.hpp"

namespace choir::trace {
namespace {

struct TraceFileTest : ::testing::Test {
  std::string path;
  void SetUp() override {
    path = ::testing::TempDir() + "choir_trace_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".trc";
  }
  void TearDown() override { std::remove(path.c_str()); }
};

Capture sample_capture(std::size_t n) {
  Capture cap("sample");
  for (std::size_t i = 0; i < n; ++i) {
    pktio::Frame frame;
    frame.wire_len = 1400;
    frame.header_len = 42;
    frame.header[0] = static_cast<std::uint8_t>(i);
    frame.payload_token = i * 31;
    stamp(frame, Tag{2, 1, i});
    cap.append(CaptureRecord::from_frame(frame, static_cast<Ns>(i) * 280));
  }
  return cap;
}

TEST_F(TraceFileTest, RoundTripPreservesRecords) {
  const Capture original = sample_capture(100);
  write_trace(original, path);
  const Capture loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, original[i].timestamp);
    EXPECT_EQ(loaded[i].wire_len, original[i].wire_len);
    EXPECT_EQ(loaded[i].header_len, original[i].header_len);
    EXPECT_EQ(loaded[i].header, original[i].header);
    EXPECT_EQ(loaded[i].has_trailer, original[i].has_trailer);
    EXPECT_EQ(loaded[i].trailer, original[i].trailer);
    EXPECT_EQ(loaded[i].payload_token, original[i].payload_token);
  }
}

TEST_F(TraceFileTest, EmptyCaptureRoundTrips) {
  write_trace(Capture("empty"), path);
  EXPECT_EQ(read_trace(path).size(), 0u);
}

TEST_F(TraceFileTest, TrialIdenticalAfterRoundTrip) {
  const Capture original = sample_capture(50);
  write_trace(original, path);
  const Capture loaded = read_trace(path);
  const auto r = core::compare_trials(original.to_trial(), loaded.to_trial());
  EXPECT_EQ(r.metrics.kappa, 1.0);
}

TEST_F(TraceFileTest, MissingFileThrows) {
  EXPECT_THROW(read_trace(path + ".does-not-exist"), Error);
}

TEST_F(TraceFileTest, BadMagicRejected) {
  std::ofstream out(path, std::ios::binary);
  out << "NOTATRACE-FILE-AT-ALL";
  out.close();
  EXPECT_THROW(read_trace(path), Error);
}

TEST_F(TraceFileTest, TruncatedFileRejected) {
  write_trace(sample_capture(10), path);
  // Chop the last record in half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<long>(in.tellg());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::in);
  out.close();
  ASSERT_EQ(truncate(path.c_str(), size - 20), 0);
  EXPECT_THROW(read_trace(path), Error);
}

TEST_F(TraceFileTest, NegativeTimestampsSupported) {
  Capture cap("neg");
  pktio::Frame frame;
  frame.wire_len = 64;
  cap.append(CaptureRecord::from_frame(frame, -12345));
  write_trace(cap, path);
  EXPECT_EQ(read_trace(path)[0].timestamp, -12345);
}

}  // namespace
}  // namespace choir::trace
