#include "trace/trace_file.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "core/metrics.hpp"
#include "trace/tag.hpp"

namespace choir::trace {
namespace {

struct TraceFileTest : ::testing::Test {
  std::string path;
  void SetUp() override {
    path = ::testing::TempDir() + "choir_trace_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".trc";
  }
  void TearDown() override { std::remove(path.c_str()); }
};

Capture sample_capture(std::size_t n) {
  Capture cap("sample");
  for (std::size_t i = 0; i < n; ++i) {
    pktio::Frame frame;
    frame.wire_len = 1400;
    frame.header_len = 42;
    frame.header[0] = static_cast<std::uint8_t>(i);
    frame.payload_token = i * 31;
    stamp(frame, Tag{2, 1, i});
    cap.append(CaptureRecord::from_frame(frame, static_cast<Ns>(i) * 280));
  }
  return cap;
}

TEST_F(TraceFileTest, RoundTripPreservesRecords) {
  const Capture original = sample_capture(100);
  write_trace(original, path);
  const Capture loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].timestamp, original[i].timestamp);
    EXPECT_EQ(loaded[i].wire_len, original[i].wire_len);
    EXPECT_EQ(loaded[i].header_len, original[i].header_len);
    EXPECT_EQ(loaded[i].header, original[i].header);
    EXPECT_EQ(loaded[i].has_trailer, original[i].has_trailer);
    EXPECT_EQ(loaded[i].trailer, original[i].trailer);
    EXPECT_EQ(loaded[i].payload_token, original[i].payload_token);
  }
}

TEST_F(TraceFileTest, EmptyCaptureRoundTrips) {
  write_trace(Capture("empty"), path);
  EXPECT_EQ(read_trace(path).size(), 0u);
}

TEST_F(TraceFileTest, TrialIdenticalAfterRoundTrip) {
  const Capture original = sample_capture(50);
  write_trace(original, path);
  const Capture loaded = read_trace(path);
  const auto r = core::compare_trials(original.to_trial(), loaded.to_trial());
  EXPECT_EQ(r.metrics.kappa, 1.0);
}

TEST_F(TraceFileTest, MissingFileThrows) {
  EXPECT_THROW(read_trace(path + ".does-not-exist"), Error);
}

TEST_F(TraceFileTest, BadMagicRejected) {
  std::ofstream out(path, std::ios::binary);
  out << "NOTATRACE-FILE-AT-ALL";
  out.close();
  EXPECT_THROW(read_trace(path), Error);
}

TEST_F(TraceFileTest, TruncatedFileRejected) {
  write_trace(sample_capture(10), path);
  // Chop the last record in half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<long>(in.tellg());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::in);
  out.close();
  ASSERT_EQ(truncate(path.c_str(), size - 20), 0);
  EXPECT_THROW(read_trace(path), Error);
}

// --- MappedCapture ------------------------------------------------------

TEST_F(TraceFileTest, MappedMatchesReadTrace) {
  const Capture original = sample_capture(100);
  write_trace(original, path);
  const Capture loaded = read_trace(path);
  const MappedCapture mapped(path);
  EXPECT_TRUE(mapped.zero_copy());
  ASSERT_EQ(mapped.size(), loaded.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(mapped.timestamp(i), loaded[i].timestamp);
    EXPECT_EQ(mapped.raw_packet_id(i).hi, loaded[i].packet_id().hi);
    EXPECT_EQ(mapped.raw_packet_id(i).lo, loaded[i].packet_id().lo);
    const CaptureRecord r = mapped.record(i);
    EXPECT_EQ(r.timestamp, loaded[i].timestamp);
    EXPECT_EQ(r.wire_len, loaded[i].wire_len);
    EXPECT_EQ(r.header_len, loaded[i].header_len);
    EXPECT_EQ(r.header, loaded[i].header);
    EXPECT_EQ(r.has_trailer, loaded[i].has_trailer);
    EXPECT_EQ(r.trailer, loaded[i].trailer);
    EXPECT_EQ(r.payload_token, loaded[i].payload_token);
  }
}

TEST_F(TraceFileTest, MappedToTrialMatchesCapture) {
  write_trace(sample_capture(200), path);
  const core::Trial from_read = read_trace(path).to_trial();
  const core::Trial from_map = MappedCapture(path).to_trial();
  ASSERT_EQ(from_map.size(), from_read.size());
  for (std::size_t i = 0; i < from_read.size(); ++i) {
    EXPECT_EQ(from_map[i].id.hi, from_read[i].id.hi);
    EXPECT_EQ(from_map[i].id.lo, from_read[i].id.lo);
    EXPECT_EQ(from_map[i].time, from_read[i].time);
  }
}

TEST_F(TraceFileTest, MappedMaterializeMatchesReadTrace) {
  write_trace(sample_capture(40), path);
  const Capture loaded = read_trace(path);
  const Capture materialized = MappedCapture(path).materialize();
  ASSERT_EQ(materialized.size(), loaded.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(materialized[i].timestamp, loaded[i].timestamp);
    EXPECT_EQ(materialized[i].header, loaded[i].header);
    EXPECT_EQ(materialized[i].trailer, loaded[i].trailer);
    EXPECT_EQ(materialized[i].payload_token, loaded[i].payload_token);
  }
}

TEST_F(TraceFileTest, MappedUntaggedIdFallsBackToPayloadToken) {
  Capture cap("untagged");
  pktio::Frame frame;
  frame.wire_len = 64;
  frame.payload_token = 0xDEADBEEF;
  cap.append(CaptureRecord::from_frame(frame, 5));
  write_trace(cap, path);
  const MappedCapture mapped(path);
  EXPECT_EQ(mapped.raw_packet_id(0).lo, 0xDEADBEEFu);
  EXPECT_EQ(mapped.raw_packet_id(0).hi, cap[0].packet_id().hi);
}

TEST_F(TraceFileTest, MappedEmptyTrace) {
  write_trace(Capture("empty"), path);
  const MappedCapture mapped(path);
  EXPECT_TRUE(mapped.empty());
  EXPECT_EQ(mapped.to_trial().size(), 0u);
}

TEST_F(TraceFileTest, MappedMissingFileThrows) {
  EXPECT_THROW(MappedCapture(path + ".does-not-exist"), FormatError);
}

TEST_F(TraceFileTest, MappedBadMagicRejected) {
  std::ofstream out(path, std::ios::binary);
  out << "NOTATRACE-FILE-AT-ALL";
  out.close();
  EXPECT_THROW(MappedCapture{path}, FormatError);
}

TEST_F(TraceFileTest, MappedBadVersionRejected) {
  write_trace(sample_capture(3), path);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);  // version field follows the 8-byte magic
  const std::uint32_t bad = 999;
  f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  f.close();
  EXPECT_THROW(MappedCapture{path}, FormatError);
  EXPECT_THROW(read_trace(path), FormatError);
}

TEST_F(TraceFileTest, MappedTruncatedRejected) {
  write_trace(sample_capture(10), path);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<long>(in.tellg());
  in.close();
  ASSERT_EQ(truncate(path.c_str(), size - 20), 0);
  EXPECT_THROW(MappedCapture{path}, FormatError);
}

TEST_F(TraceFileTest, MappedCorruptWireLenRejected) {
  write_trace(sample_capture(5), path);
  // Record 2's wire_len field: header + 2 records + 8-byte offset.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<std::streamoff>(kTraceHeaderBytes +
                                      2 * kTraceRecordBytes + 8));
  const std::uint32_t bad = 0xFFFFFFFF;
  f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  f.close();
  EXPECT_THROW(MappedCapture{path}, FormatError);
  EXPECT_THROW(read_trace(path), FormatError);
}

TEST_F(TraceFileTest, NegativeTimestampsSupported) {
  Capture cap("neg");
  pktio::Frame frame;
  frame.wire_len = 64;
  cap.append(CaptureRecord::from_frame(frame, -12345));
  write_trace(cap, path);
  EXPECT_EQ(read_trace(path)[0].timestamp, -12345);
}

}  // namespace
}  // namespace choir::trace
