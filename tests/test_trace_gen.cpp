#include "gen/trace_gen.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace choir::gen {
namespace {

using test::SinkEndpoint;

net::NicConfig quiet() {
  net::NicConfig cfg;
  cfg.ts_noise_sigma_ns = 0.0;
  cfg.wander_sigma_ns = 0.0;
  cfg.stall_rate_hz = 0.0;
  cfg.dma_pull_jitter_sigma_ns = 0.0;
  return cfg;
}

pktio::FlowAddress test_flow() {
  pktio::FlowAddress f;
  f.src_mac = pktio::mac_for_node(1);
  f.dst_mac = pktio::mac_for_node(2);
  f.src_ip = pktio::ip_for_node(1);
  f.dst_ip = pktio::ip_for_node(2);
  f.src_port = 1;
  f.dst_port = 2;
  return f;
}

trace::Capture irregular_capture(std::size_t n) {
  trace::Capture cap("src");
  Ns t = 5000;
  for (std::size_t i = 0; i < n; ++i) {
    trace::CaptureRecord r;
    r.timestamp = t;
    r.wire_len = i % 3 == 0 ? 1400 : 300;
    r.payload_token = i;
    cap.append(r);
    t += 500 + static_cast<Ns>(i % 7) * 130;  // irregular spacing
  }
  return cap;
}

struct TraceGenFixture : ::testing::Test {
  sim::EventQueue queue;
  SinkEndpoint sink;
  net::Link egress{queue, net::LinkConfig{0}};
  pktio::Mempool pool{4096};
  TraceGenFixture() { egress.connect(sink); }
};

TEST_F(TraceGenFixture, EmitsWholeCapture) {
  net::PhysNic nic(queue, quiet(), Rng(1), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  const auto cap = irregular_capture(200);
  TraceGenerator gen(queue, vf, pool, cap, test_flow(), microseconds(100));
  gen.start();
  queue.run();
  EXPECT_EQ(gen.emitted(), 200u);
  EXPECT_TRUE(gen.done());
  EXPECT_EQ(sink.deliveries.size(), 200u);
}

TEST_F(TraceGenFixture, ReproducesRecordedSpacing) {
  net::PhysNic nic(queue, quiet(), Rng(2), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  const auto cap = irregular_capture(100);
  TraceGenerator gen(queue, vf, pool, cap, test_flow(), microseconds(100));
  gen.start();
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 100u);
  // Wire-time deltas equal capture-time deltas (idle wire; the frame's
  // own serialization shifts both ends identically only for same sizes,
  // so compare start-of-frame offsets = wire_time - serialization).
  for (std::size_t i = 1; i < 100; ++i) {
    const Ns recorded = cap[i].timestamp - cap[i - 1].timestamp;
    const Ns ser_i = serialization_ns(cap[i].wire_len, gbps(100));
    const Ns ser_p = serialization_ns(cap[i - 1].wire_len, gbps(100));
    const Ns replayed = (sink.deliveries[i].wire_time - ser_i) -
                        (sink.deliveries[i - 1].wire_time - ser_p);
    EXPECT_EQ(replayed, recorded) << "at " << i;
  }
}

TEST_F(TraceGenFixture, PreservesSizesAndTokens) {
  net::PhysNic nic(queue, quiet(), Rng(3), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  const auto cap = irregular_capture(30);
  TraceGenerator gen(queue, vf, pool, cap, test_flow(), microseconds(50));
  gen.start();
  queue.run();
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(sink.deliveries[i].wire_len, cap[i].wire_len);
    EXPECT_EQ(sink.deliveries[i].payload_token, cap[i].payload_token);
  }
}

TEST_F(TraceGenFixture, EmptyCaptureIsNoop) {
  net::PhysNic nic(queue, quiet(), Rng(4), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  trace::Capture empty("empty");
  TraceGenerator gen(queue, vf, pool, empty, test_flow(), 0);
  gen.start();
  queue.run();
  EXPECT_EQ(gen.emitted(), 0u);
}

TEST_F(TraceGenFixture, SurvivesPoolExhaustion) {
  net::PhysNic nic(queue, quiet(), Rng(5), egress);
  net::Vf& vf = nic.add_vf(pktio::mac_for_node(1));
  pktio::Mempool tiny(4);
  const auto cap = irregular_capture(100);
  TraceGenerator gen(queue, vf, tiny, cap, test_flow(), microseconds(10));
  gen.start();
  queue.run();
  EXPECT_GT(gen.alloc_failures(), 0u);
  EXPECT_EQ(gen.emitted() + gen.alloc_failures(), 100u);
}

}  // namespace
}  // namespace choir::gen
