#include "core/trial.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace choir::core {
namespace {

TEST(Trial, BasicAccessors) {
  Trial t;
  EXPECT_TRUE(t.empty());
  t.push_back(TrialPacket{PacketId{1, 2}, 100});
  t.push_back(TrialPacket{PacketId{1, 3}, 350});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.first_time(), 100);
  EXPECT_EQ(t.last_time(), 350);
  EXPECT_EQ(t.duration(), 250);
}

TEST(Trial, IdsUniqueDetectsDuplicates) {
  Trial t;
  t.push_back(TrialPacket{PacketId{1, 1}, 0});
  t.push_back(TrialPacket{PacketId{1, 2}, 1});
  EXPECT_TRUE(t.ids_unique());
  t.push_back(TrialPacket{PacketId{1, 1}, 2});
  EXPECT_FALSE(t.ids_unique());
}

TEST(Trial, OccurrenceTaggingMakesIdsUnique) {
  Trial t;
  for (int i = 0; i < 5; ++i) {
    t.push_back(TrialPacket{PacketId{9, 9}, i * 10});
  }
  EXPECT_EQ(t.make_occurrences_unique(), 4u);  // first stays untouched
  EXPECT_TRUE(t.ids_unique());
}

TEST(Trial, OccurrenceTaggingIsStable) {
  // Same duplicate sequence tags identically in two trials, so the k-th
  // occurrence in A matches the k-th in B (Section 3's construction).
  auto build = [] {
    Trial t;
    t.push_back(TrialPacket{PacketId{1, 5}, 0});
    t.push_back(TrialPacket{PacketId{1, 5}, 10});
    t.push_back(TrialPacket{PacketId{1, 6}, 20});
    t.push_back(TrialPacket{PacketId{1, 5}, 30});
    t.make_occurrences_unique();
    return t;
  };
  const Trial a = build();
  const Trial b = build();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(Trial, OccurrenceTaggingNoopOnUniqueIds) {
  Trial t;
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.push_back(TrialPacket{PacketId{0, i}, static_cast<Ns>(i)});
  }
  EXPECT_EQ(t.make_occurrences_unique(), 0u);
}

TEST(PacketId, EqualityAndHash) {
  const PacketId a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  PacketIdHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));  // not guaranteed in general, but true here
}

TEST(PacketIdHash, SpreadsSequentialIds) {
  PacketIdHash h;
  std::size_t collisions = 0;
  std::vector<std::size_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.push_back(h(PacketId{0, i}) % 4096);
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 1; i < seen.size(); ++i) {
    if (seen[i] == seen[i - 1]) ++collisions;
  }
  EXPECT_LT(collisions, 300u);  // far from degenerate
}

}  // namespace
}  // namespace choir::core
