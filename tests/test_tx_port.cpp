#include "net/tx_port.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace choir::net {
namespace {

using test::SinkEndpoint;
using test::make_frame;

struct TxPortFixture : ::testing::Test {
  sim::EventQueue queue;
  SinkEndpoint sink;
  Link link{queue, LinkConfig{0}};  // zero propagation for exact math
  pktio::Mempool pool{64};

  TxPortFixture() { link.connect(sink); }
};

TEST_F(TxPortFixture, SerializesAtLineRate) {
  TxPort port(queue, link, gbps(100), 16);
  port.submit(make_frame(pool, 1400, 1), 0);
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].wire_time, 112);  // 1400 B at 100 G
}

TEST_F(TxPortFixture, BackToBackFramesSpaceBySerialization) {
  TxPort port(queue, link, gbps(100), 16);
  for (int i = 0; i < 4; ++i) port.submit(make_frame(pool, 1400, i), 0);
  queue.run();
  ASSERT_EQ(sink.deliveries.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.deliveries[i].wire_time, 112 * (i + 1));
  }
}

TEST_F(TxPortFixture, NotBeforeDelaysStart) {
  TxPort port(queue, link, gbps(100), 16);
  port.submit(make_frame(pool, 1400, 1), 1000);
  queue.run();
  EXPECT_EQ(sink.deliveries[0].wire_time, 1112);
}

TEST_F(TxPortFixture, PacedSubmissionsKeepExactGaps) {
  // CBR pacing: frame n not-before n*280; wire is otherwise idle.
  TxPort port(queue, link, gbps(100), 64);
  for (int i = 0; i < 10; ++i) {
    port.submit(make_frame(pool, 1400, i), i * 280);
  }
  queue.run();
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(sink.deliveries[i].wire_time - sink.deliveries[i - 1].wire_time,
              280);
  }
}

TEST_F(TxPortFixture, ContentionQueuesInOrder) {
  // Two streams submitted at the same instant interleave in submission
  // order and never overlap on the wire.
  TxPort port(queue, link, gbps(100), 64);
  for (int i = 0; i < 8; ++i) port.submit(make_frame(pool, 700, i), 0);
  queue.run();
  Ns prev = 0;
  for (const auto& d : sink.deliveries) {
    EXPECT_GE(d.wire_time - prev, 56);  // 700 B at 100 G
    prev = d.wire_time;
  }
  for (std::size_t i = 0; i < sink.deliveries.size(); ++i) {
    EXPECT_EQ(sink.deliveries[i].payload_token, i);
  }
}

TEST_F(TxPortFixture, TailDropBeyondQueueCapacity) {
  TxPort port(queue, link, gbps(100), 4);
  for (int i = 0; i < 10; ++i) port.submit(make_frame(pool, 1400, i), 0);
  EXPECT_EQ(port.drops(), 6u);
  queue.run();
  EXPECT_EQ(sink.deliveries.size(), 4u);
  EXPECT_EQ(port.frames_sent(), 4u);
  // Dropped buffers were released back to the pool.
  EXPECT_EQ(pool.available(), pool.capacity());
}

TEST_F(TxPortFixture, QueueDrainsThenAcceptsAgain) {
  TxPort port(queue, link, gbps(100), 2);
  port.submit(make_frame(pool, 1400, 1), 0);
  port.submit(make_frame(pool, 1400, 2), 0);
  EXPECT_FALSE(port.submit(make_frame(pool, 1400, 3), 0));
  queue.run();
  EXPECT_TRUE(port.submit(make_frame(pool, 1400, 4), queue.now()));
  queue.run();
  EXPECT_EQ(sink.deliveries.size(), 3u);
}

TEST_F(TxPortFixture, BytesAndFramesCounted) {
  TxPort port(queue, link, gbps(40), 16);
  port.submit(make_frame(pool, 1000, 1), 0);
  port.submit(make_frame(pool, 500, 2), 0);
  queue.run();
  EXPECT_EQ(port.frames_sent(), 2u);
  EXPECT_EQ(port.bytes_sent(), 1500u);
}

TEST_F(TxPortFixture, UnconnectedLinkBlackholes) {
  Link dangling(queue);
  TxPort port(queue, dangling, gbps(100), 16);
  port.submit(make_frame(pool, 1400, 1), 0);
  queue.run();
  EXPECT_EQ(pool.available(), pool.capacity());  // released, not leaked
}

TEST(TxPortLink, PropagationDelayAdds) {
  sim::EventQueue queue;
  SinkEndpoint sink;
  Link link(queue, LinkConfig{500});
  link.connect(sink);
  pktio::Mempool pool(4);
  TxPort port(queue, link, gbps(100), 4);
  port.submit(make_frame(pool, 1400, 1), 0);
  queue.run();
  EXPECT_EQ(sink.deliveries[0].wire_time, 112 + 500);
}

}  // namespace
}  // namespace choir::net
