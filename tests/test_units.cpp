#include "common/units.hpp"

#include <gtest/gtest.h>

namespace choir {
namespace {

TEST(Units, TimeConstructors) {
  EXPECT_EQ(microseconds(1), 1000);
  EXPECT_EQ(milliseconds(1), 1000000);
  EXPECT_EQ(seconds(1), 1000000000);
  EXPECT_EQ(seconds(0.3), 300000000);
}

TEST(Units, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
}

TEST(Units, RateConstructors) {
  EXPECT_DOUBLE_EQ(gbps(100), 1e11);
  EXPECT_DOUBLE_EQ(mbps(10), 1e7);
}

TEST(Units, SerializationAt100G) {
  // 1400 bytes at 100 Gbps = 112 ns.
  EXPECT_EQ(serialization_ns(1400, gbps(100)), 112);
}

TEST(Units, SerializationAt40G) {
  // 1400 bytes at 40 Gbps = 280 ns.
  EXPECT_EQ(serialization_ns(1400, gbps(40)), 280);
}

TEST(Units, SerializationRounds) {
  // 64 bytes at 100G = 5.12 ns -> rounds to 5.
  EXPECT_EQ(serialization_ns(64, gbps(100)), 5);
}

TEST(Units, SerializationZeroRateIsInstant) {
  EXPECT_EQ(serialization_ns(1400, 0.0), 0);
  EXPECT_EQ(serialization_ns(1400, -1.0), 0);
}

TEST(Units, PacketsPerSecond) {
  // The paper: 40 Gbps of 1400-byte packets = 3.57 Mpps nominal
  // (3.52 Mpps measured after overheads).
  EXPECT_NEAR(packets_per_sec(1400, gbps(40)), 3.571e6, 1e3);
}

TEST(Units, MeanIatMatchesRate) {
  const double iat = mean_iat_ns(1400, gbps(40));
  EXPECT_NEAR(iat, 280.0, 0.01);
  // Consistency: iat * pps == 1 second.
  EXPECT_NEAR(iat * packets_per_sec(1400, gbps(40)), 1e9, 1.0);
}

TEST(Units, EightyGigHalvesGap) {
  EXPECT_NEAR(mean_iat_ns(1400, gbps(80)) * 2.0, mean_iat_ns(1400, gbps(40)),
              1e-9);
}

}  // namespace
}  // namespace choir
