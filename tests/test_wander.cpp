#include "net/wander.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace choir::net {
namespace {

TEST(Wander, DisabledReturnsZero) {
  WanderProcess w(0.0, 0.8, milliseconds(10), Rng(1));
  for (Ns t = 0; t < seconds(1); t += milliseconds(7)) {
    EXPECT_EQ(w.value(t), 0.0);
  }
}

TEST(Wander, ContinuousBetweenUpdates) {
  WanderProcess w(1000.0, 0.8, milliseconds(10), Rng(2));
  double prev = w.value(0);
  for (Ns t = 1000; t < milliseconds(100); t += 1000) {
    const double v = w.value(t);
    // With 1 us steps inside 10 ms intervals the slope is tiny.
    EXPECT_LT(std::abs(v - prev), 50.0);
    prev = v;
  }
}

TEST(Wander, StationaryAmplitudeNearSigma) {
  WanderProcess w(500.0, 0.7, milliseconds(1), Rng(3));
  double sq = 0;
  int n = 0;
  for (Ns t = 0; t < seconds(10); t += milliseconds(1)) {
    const double v = w.value(t);
    sq += v * v;
    ++n;
  }
  const double rms = std::sqrt(sq / n);
  EXPECT_NEAR(rms, 500.0, 120.0);
}

TEST(Wander, DeterministicPerSeed) {
  WanderProcess a(800.0, 0.75, milliseconds(10), Rng(4));
  WanderProcess b(800.0, 0.75, milliseconds(10), Rng(4));
  for (Ns t = 0; t < milliseconds(200); t += microseconds(333)) {
    ASSERT_DOUBLE_EQ(a.value(t), b.value(t));
  }
}

TEST(Wander, DifferentSeedsDiffer) {
  WanderProcess a(800.0, 0.75, milliseconds(10), Rng(5));
  WanderProcess b(800.0, 0.75, milliseconds(10), Rng(6));
  double diff = 0;
  for (Ns t = 0; t < milliseconds(100); t += milliseconds(5)) {
    diff += std::abs(a.value(t) - b.value(t));
  }
  EXPECT_GT(diff, 100.0);
}

TEST(Wander, DecorrelatesOverManyIntervals) {
  WanderProcess w(1000.0, 0.5, milliseconds(1), Rng(7));
  const double v0 = w.value(0);
  // After 50 intervals at rho=0.5, correlation with v0 is ~2^-50.
  const double v_far = w.value(milliseconds(50));
  EXPECT_NE(v0, v_far);
}

}  // namespace
}  // namespace choir::net
