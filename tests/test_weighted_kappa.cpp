#include "core/weighted_kappa.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace choir::core {
namespace {

TEST(WeightedKappa, LinearMatchesEq5) {
  const KappaScaling linear = KappaScaling::linear();
  for (const auto& [u, o, l, i] :
       {std::tuple{0.0, 0.0, 0.0, 0.0}, std::tuple{1.0, 1.0, 1.0, 1.0},
        std::tuple{0.1, 0.02, 1e-5, 0.5}}) {
    EXPECT_NEAR(scaled_kappa(u, o, l, i, linear), kappa_of(u, o, l, i),
                1e-12);
  }
}

TEST(WeightedKappa, BoundsHold) {
  for (const KappaScaling& s :
       {KappaScaling::linear(), KappaScaling::presence_sensitive(),
        KappaScaling::range_equalized()}) {
    EXPECT_DOUBLE_EQ(scaled_kappa(0, 0, 0, 0, s), 1.0);
    EXPECT_NEAR(scaled_kappa(1, 1, 1, 1, s), 0.0, 1e-12);
    const double mid = scaled_kappa(0.3, 0.1, 0.01, 0.4, s);
    EXPECT_GT(mid, 0.0);
    EXPECT_LT(mid, 1.0);
  }
}

TEST(WeightedKappa, MonotoneInEveryComponent) {
  const KappaScaling s = KappaScaling::presence_sensitive();
  const double base = scaled_kappa(0.1, 0.1, 0.1, 0.1, s);
  EXPECT_LT(scaled_kappa(0.2, 0.1, 0.1, 0.1, s), base);
  EXPECT_LT(scaled_kappa(0.1, 0.2, 0.1, 0.1, s), base);
  EXPECT_LT(scaled_kappa(0.1, 0.1, 0.2, 0.1, s), base);
  EXPECT_LT(scaled_kappa(0.1, 0.1, 0.1, 0.2, s), base);
}

TEST(WeightedKappa, PresenceSensitiveAmplifiesTinyDrops) {
  // The paper's noisy run: U ~ 2e-4 barely moves linear kappa. With
  // sqrt scaling the presence of drops costs visibly more.
  const double linear_gap = kappa_of(0, 0, 0, 0) - kappa_of(2e-4, 0, 0, 0);
  const KappaScaling s = KappaScaling::presence_sensitive();
  const double scaled_gap =
      scaled_kappa(0, 0, 0, 0, s) - scaled_kappa(2e-4, 0, 0, 0, s);
  EXPECT_GT(scaled_gap, 20.0 * linear_gap);
}

TEST(WeightedKappa, RangeEqualizedLiftsLatencyVisibility) {
  // L varying within 1e-4 moves the equalized score more than it moves
  // the linear score.
  const KappaScaling eq = KappaScaling::range_equalized();
  const double linear_gap = kappa_of(0, 0, 0, 0.1) - kappa_of(0, 0, 1e-4, 0.1);
  const double eq_gap = scaled_kappa(0, 0, 0, 0.1, eq) -
                        scaled_kappa(0, 0, 1e-4, 0.1, eq);
  EXPECT_GT(eq_gap, 5.0 * std::abs(linear_gap));
}

TEST(WeightedKappa, WeightsAreRelative) {
  // Doubling all weights changes nothing (only ratios matter).
  KappaScaling a = KappaScaling::linear();
  KappaScaling b = a;
  b.weight_uniqueness *= 2;
  b.weight_ordering *= 2;
  b.weight_latency *= 2;
  b.weight_iat *= 2;
  EXPECT_NEAR(scaled_kappa(0.2, 0.1, 0.3, 0.05, a),
              scaled_kappa(0.2, 0.1, 0.3, 0.05, b), 1e-12);
}

TEST(WeightedKappa, FromMetricsStruct) {
  ConsistencyMetrics m;
  m.uniqueness = 0.1;
  m.ordering = 0.2;
  m.latency = 0.3;
  m.iat = 0.4;
  EXPECT_NEAR(scaled_kappa(m, KappaScaling::linear()),
              kappa_of(0.1, 0.2, 0.3, 0.4), 1e-12);
}

TEST(WeightedKappa, ValidationRejectsBadParameters) {
  KappaScaling zero_weight;
  zero_weight.weight_iat = 0.0;
  EXPECT_THROW(scaled_kappa(0, 0, 0, 0, zero_weight), Error);
  KappaScaling bad_exponent;
  bad_exponent.exponent_uniqueness = 1.5;
  EXPECT_THROW(scaled_kappa(0, 0, 0, 0, bad_exponent), Error);
  KappaScaling zero_exponent;
  zero_exponent.exponent_ordering = 0.0;
  EXPECT_THROW(scaled_kappa(0, 0, 0, 0, zero_exponent), Error);
  EXPECT_THROW(scaled_kappa(1.5, 0, 0, 0, KappaScaling::linear()), Error);
}

TEST(WeightedKappa, RankingPreservedAcrossScalings) {
  // Dominance: if every component of X exceeds Y's, every scaling ranks
  // X below Y.
  for (const KappaScaling& s :
       {KappaScaling::linear(), KappaScaling::presence_sensitive(),
        KappaScaling::range_equalized()}) {
    EXPECT_LT(scaled_kappa(0.2, 0.2, 0.2, 0.2, s),
              scaled_kappa(0.1, 0.1, 0.1, 0.1, s));
  }
}

}  // namespace
}  // namespace choir::core
