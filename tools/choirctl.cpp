// choirctl — command-line front end for the Choir experiment suite.
//
// Subcommands:
//   list                      list environment presets
//   run <env> [opts]          run an experiment, print metrics
//   figure <env> [opts]       run and print IAT/latency histograms
//   save <env> <dir> [opts]   run and write per-run .trc and .pcap files
//   stats <env> [opts]        run with telemetry, print counter/latency stats
//   stats <dir>               summarize previously written telemetry artifacts
//   monitor <env> [opts]      run with the streaming monitor, print windows
//   flows <env> [opts]        run a many-flow experiment, print per-flow
//                             kappa aggregates and the worst flows
//   postmortem <env> [opts]   group run with flight recording; merge the
//                             per-node rings into a causal timeline and
//                             print a root-cause report for every bad
//                             outcome (eviction, resync, kappa gate)
//   top <env> [opts]          run with the series sampler and render a
//                             live terminal view of every metric series
//                             (sparklines), final table at exit
//   soak <env> [opts]         N independent rounds (seed, seed+1, ...);
//                             feed per-round kappa series and counter
//                             totals through the drift detector and
//                             print the drift verdict (--drift-gate
//                             exits 1 on a drifting series)
//   export <env> <dir> [opts] run with telemetry + series and write the
//                             full artifact set, including series.jsonl
//                             and the Prometheus text exposition
//   compare <a.trc> <b.trc>   compute the Section 3 metrics offline
//   partition <trace> <n> <dir>  split a trace into n per-node sub-traces
//                             (flow-sharded, timelines rebased to 0)
//   bench                     list benchmark suites
//   bench <suite> [opts]      run a suite, write BENCH_*.json artifacts
//   bench --compare A B       diff two BENCH_*.json directories
//
// Options:
//   --packets N    packets per trial (default: CHOIR_SCALE or 120000)
//   --runs N       replays including run A (default 5)
//   --seed N       experiment seed (default 1)
//   --engine E     choir | sleep | busywait | gapfill (default choir)
//   --telemetry D  collect telemetry and write counters.jsonl,
//                  histograms.csv and trace.json into directory D
//   --series-interval MS  sample every metric into its ring-buffer
//                  series every MS simulated milliseconds (fractional
//                  ok); adds series.jsonl + metrics.prom to --telemetry
//                  artifacts. top/export default to ~64 samples/run
//   --series-capacity N   ring capacity per metric series (default 4096)
//   --rounds N     (soak) independent rounds to run (default 6)
//   --drift-gate   (soak) exit 1 when any series is drifting
//   --monitor D    enable the streaming monitor and write
//                  divergence.jsonl + windows.csv into directory D
//   --window-packets N  monitor window size in packets (default 8192)
//   --top-k N      attribution entries per window per kind (default 16)
//   --windows      (stats) also run the monitor and print per-window rows
//   --per-flow     classify flows and evaluate per-flow kappa (see
//                  docs/FLOWS.md); implied by `flows` and by --flows
//   --group        run the replay-group protocol (coordinator node,
//                  barrier start, beacons, straggler resync; see
//                  docs/DISTRIBUTED.md)
//   --nodes N      replay-node count (implies --group for N outside the
//                  preset's hardwired 1..2 range)
//   --flows N      synthetic flow count for the many-flow workload
//   --flow-shards N  classifier shards / flow.<shard>.* namespaces
//   --flow ID      (stats) show one flow; exits 1 when ID is absent
//   --obs D        record per-node flight rings and write
//                  group_trace.json + events.jsonl into directory D
//                  (postmortem also writes postmortem.json there)
//   --trace-sample N  ring-log round-affine events only every Nth round
//                  (keeps flight recording cheap at bench scale)
//   --chaos P      (postmortem) inject a group failure preset aimed at
//                  run 1's replay: stall | ctl-loss | clock
//   --chaos-node I (postmortem) replayer index the preset targets (def 1)
//   --kappa-gate X (postmortem) flag rounds with kappa below X; exits 1
//                  when any round fails the gate
//   --profile      host-time span profiling (profile.csv, trace track)
//   --jobs N       worker threads (0 = auto: CHOIR_JOBS, else hardware
//                  concurrency; 1 = sequential). Results are
//                  byte-identical at any setting; `bench <suite> --jobs`
//                  fans whole experiments out, `run`/`stats`/... use it
//                  for the parallel metric evaluation.
//
// Environment names accept every preset from `list` plus chaos-<f>
// (e.g. chaos-0.50) for the parametric chaos sweep presets.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/export.hpp"
#include "analysis/histogram.hpp"
#include "analysis/postmortem.hpp"
#include "analysis/report.hpp"
#include "analysis/telemetry_dir.hpp"
#include "monitor/drift.hpp"
#include "core/weighted_kappa.hpp"
#include "fault/chaos.hpp"
#include "obs/postmortem.hpp"
#include "testbed/bench_suite.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scale.hpp"
#include "trace/partition.hpp"
#include "trace/pcap.hpp"
#include "trace/trace_file.hpp"

namespace {

using namespace choir;

int usage() {
  std::fprintf(
      stderr,
      "usage: choirctl <command> [args]\n"
      "  list                          environment presets\n"
      "  run <env> [opts]              run an experiment, print metrics\n"
      "  figure <env> [opts]           print IAT/latency delta histograms\n"
      "  save <env> <dir> [opts]       write per-run .trc/.pcap files\n"
      "  stats <env> [opts]            run with telemetry, print stats\n"
      "  stats <dir>                   summarize saved telemetry artifacts\n"
      "  monitor <env> [opts]          run with the streaming monitor\n"
      "  flows <env> [opts]            many-flow run, per-flow kappa\n"
      "  postmortem <env> [opts]       group run + flight recording +\n"
      "                                root-cause report (see --chaos,\n"
      "                                --kappa-gate, --obs)\n"
      "  top <env> [opts]              live terminal view of the metric\n"
      "                                series (sparklines)\n"
      "  soak <env> [opts]             N-round soak; drift verdict over\n"
      "                                per-round kappa + counter rates\n"
      "                                (--rounds N, --drift-gate)\n"
      "  export <env> <dir> [opts]     write all telemetry artifacts incl.\n"
      "                                series.jsonl + metrics.prom\n"
      "  compare <a> <b>               offline metrics between traces\n"
      "                                (.trc native or .pcap files)\n"
      "  partition <trace> <n> <dir>   flow-shard a trace into n rebased\n"
      "                                per-node .trc sub-traces\n"
      "  bench                         list benchmark suites\n"
      "  bench <suite> [--out DIR] [--jobs N] [--compare BASELINE]\n"
      "                [--tolerance PCT] [--reps N]\n"
      "                [--stats-baseline FILE] [--stats-out FILE]\n"
      "                                run a suite, write BENCH_*.json;\n"
      "                                with --compare, gate against the\n"
      "                                baseline dir (exit 1 on regression);\n"
      "                                with --reps, repeat N times and\n"
      "                                print statistical verdicts for the\n"
      "                                host.* throughput metrics (gated\n"
      "                                against --stats-baseline medians)\n"
      "  bench --compare A B [--tolerance PCT]\n"
      "                                diff two BENCH_*.json directories\n"
      "options: --packets N  --runs N  --seed N  --csv DIR  --engine "
      "choir|sleep|busywait|gapfill  --telemetry DIR\n"
      "         --monitor DIR  --window-packets N  --top-k N  --windows  "
      "--profile  --jobs N\n"
      "         --series-interval MS  --series-capacity N  --rounds N  "
      "--drift-gate\n"
      "         --per-flow  --flows N  --flow-shards N  --flow ID\n"
      "         --group  --nodes N  --obs DIR  --trace-sample N\n"
      "         --chaos stall|ctl-loss|clock  --chaos-node I  "
      "--kappa-gate X\n");
  return 2;
}

bool find_preset(const std::string& name, testbed::EnvironmentPreset* out) {
  for (const auto& p : testbed::all_presets()) {
    if (p.name == name) {
      *out = p;
      return true;
    }
  }
  // chaos-<intensity> presets are parametric, not in the fixed list.
  if (name.rfind("chaos-", 0) == 0) {
    char* end = nullptr;
    const double intensity = std::strtod(name.c_str() + 6, &end);
    if (end != nullptr && *end == '\0' && intensity >= 0.0 &&
        intensity <= 1.0) {
      *out = testbed::chaos_single(intensity);
      return true;
    }
  }
  return false;
}

struct Options {
  std::uint64_t packets = testbed::scale_from_env();
  int runs = 5;
  std::uint64_t seed = 1;
  testbed::ReplayEngine engine = testbed::ReplayEngine::kChoir;
  std::string csv_dir;        ///< when set, write CSV artifacts there
  std::string telemetry_dir;  ///< when set, collect + export telemetry
  bool telemetry = false;
  bool monitor = false;       ///< streaming monitor on
  std::string monitor_dir;    ///< when set, write monitor artifacts there
  std::size_t window_packets = 8192;
  std::size_t top_k = 16;
  bool windows = false;       ///< stats: print per-window monitor rows
  double series_interval_ms = 0.0;  ///< series cadence (sim ms; 0 = off)
  std::size_t series_capacity = 4096;  ///< ring capacity per series
  bool series_auto = false;   ///< top/export: derive a default cadence
  int rounds = 6;             ///< soak: independent rounds
  bool drift_gate = false;    ///< soak: exit 1 on a drifting series
  bool profile = false;       ///< host-time span profiling
  int jobs = 0;               ///< 0 = auto (CHOIR_JOBS / hw concurrency)
  bool per_flow = false;      ///< flow classification + per-flow kappa
  std::uint32_t flows = 0;    ///< synthetic flows (0 = subsystem default)
  int flow_shards = 8;        ///< classifier shards
  long long flow_id = -1;     ///< stats: show one flow (exit 1 if absent)
  bool group = false;         ///< replay-group protocol (coordinator node)
  int nodes = 0;              ///< replay-node count (0 = preset default)
  bool obs = false;           ///< per-node flight recording on
  std::string obs_dir;        ///< when set, write obs artifacts there
  int trace_sample = 1;       ///< round sampling for the flight rings
  std::string chaos;          ///< postmortem: failure preset name
  int chaos_node = 1;         ///< postmortem: targeted replayer index
  double kappa_gate = -1.0;   ///< postmortem: per-round kappa gate
  bool ok = true;
};

Options parse_options(const std::vector<std::string>& args,
                      std::size_t from) {
  Options opt;
  for (std::size_t i = from; i < args.size();) {
    const std::string& key = args[i];
    // Flags (no value).
    if (key == "--windows") {
      opt.windows = true;
      opt.monitor = true;
      ++i;
      continue;
    }
    if (key == "--profile") {
      opt.profile = true;
      ++i;
      continue;
    }
    if (key == "--per-flow") {
      opt.per_flow = true;
      ++i;
      continue;
    }
    if (key == "--group") {
      opt.group = true;
      ++i;
      continue;
    }
    if (key == "--drift-gate") {
      opt.drift_gate = true;
      ++i;
      continue;
    }
    if (i + 1 >= args.size()) {
      opt.ok = false;
      return opt;
    }
    const std::string& value = args[i + 1];
    i += 2;
    if (key == "--packets") {
      opt.packets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--runs") {
      opt.runs = std::atoi(value.c_str());
    } else if (key == "--seed") {
      opt.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--csv") {
      opt.csv_dir = value;
    } else if (key == "--telemetry") {
      opt.telemetry = true;
      opt.telemetry_dir = value;
    } else if (key == "--monitor") {
      opt.monitor = true;
      opt.monitor_dir = value;
    } else if (key == "--window-packets") {
      opt.window_packets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--top-k") {
      opt.top_k = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--jobs") {
      opt.jobs = std::atoi(value.c_str());
    } else if (key == "--series-interval") {
      opt.series_interval_ms = std::strtod(value.c_str(), nullptr);
    } else if (key == "--series-capacity") {
      opt.series_capacity = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "--rounds") {
      opt.rounds = std::atoi(value.c_str());
    } else if (key == "--flows") {
      opt.per_flow = true;
      opt.flows =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "--flow-shards") {
      opt.flow_shards = std::atoi(value.c_str());
    } else if (key == "--flow") {
      opt.per_flow = true;
      opt.flow_id = std::atoll(value.c_str());
    } else if (key == "--obs") {
      opt.obs = true;
      opt.obs_dir = value;
    } else if (key == "--trace-sample") {
      opt.obs = true;
      opt.trace_sample = std::atoi(value.c_str());
    } else if (key == "--chaos") {
      opt.chaos = value;
    } else if (key == "--chaos-node") {
      opt.chaos_node = std::atoi(value.c_str());
    } else if (key == "--kappa-gate") {
      opt.kappa_gate = std::strtod(value.c_str(), nullptr);
    } else if (key == "--nodes") {
      opt.nodes = std::atoi(value.c_str());
      // The legacy hardwired path only knows 1..2 replayers; beyond that
      // the run needs the group protocol anyway.
      if (opt.nodes > 2) opt.group = true;
    } else if (key == "--engine") {
      if (value == "choir") {
        opt.engine = testbed::ReplayEngine::kChoir;
      } else if (value == "sleep") {
        opt.engine = testbed::ReplayEngine::kSleep;
      } else if (value == "busywait") {
        opt.engine = testbed::ReplayEngine::kBusyWait;
      } else if (value == "gapfill") {
        opt.engine = testbed::ReplayEngine::kGapFill;
      } else {
        opt.ok = false;
      }
    } else {
      opt.ok = false;
    }
  }
  return opt;
}

testbed::ExperimentConfig make_config(const testbed::EnvironmentPreset& env,
                                      const Options& opt,
                                      bool keep_captures) {
  testbed::ExperimentConfig cfg;
  cfg.env = env;
  cfg.packets = opt.packets;
  cfg.runs = opt.runs;
  cfg.seed = opt.seed;
  cfg.engine = opt.engine;
  cfg.keep_captures = keep_captures;
  // --profile implies a telemetry session (the profiler exports through
  // the tracer and telemetry artifact directory).
  cfg.telemetry.enabled = opt.telemetry || opt.profile;
  cfg.telemetry.dir = opt.telemetry_dir;
  cfg.telemetry.profile = opt.profile;
  if (opt.series_interval_ms > 0.0) {
    cfg.telemetry.series_interval =
        static_cast<Ns>(opt.series_interval_ms * 1e6);
  } else if (opt.series_auto) {
    // ~64 samples across the whole schedule (record + every replay).
    const testbed::ReplaySchedule sched = testbed::replay_schedule(cfg);
    cfg.telemetry.series_interval =
        std::max<Ns>(1, sched.round_end(cfg.runs - 1) / 64);
  }
  cfg.telemetry.series_capacity = opt.series_capacity;
  cfg.monitor.enabled = opt.monitor;
  cfg.monitor.dir = opt.monitor_dir;
  cfg.monitor.window_packets = opt.window_packets;
  cfg.monitor.top_k = opt.top_k;
  cfg.eval_jobs = opt.jobs;
  cfg.flow.enabled = opt.per_flow;
  if (opt.flows > 0) cfg.flow.flows = opt.flows;
  cfg.flow.shards = opt.flow_shards;
  if (opt.nodes > 0) cfg.env.replayers = opt.nodes;
  cfg.group.enabled = opt.group;
  cfg.obs.enabled = opt.obs;
  cfg.obs.dir = opt.obs_dir;
  cfg.obs.sample_every = opt.trace_sample;
  return cfg;
}

testbed::ExperimentResult run_with(const testbed::EnvironmentPreset& env,
                                   const Options& opt, bool keep_captures) {
  return run_experiment(make_config(env, opt, keep_captures));
}

void print_flows(const testbed::ExperimentResult& result,
                 std::size_t worst_limit) {
  if (result.flow_comparisons.empty()) return;
  std::printf("-- per-flow kappa (%zu flows in run A, %llu unclassified) --\n%s",
              result.flow_count,
              static_cast<unsigned long long>(result.flow_unclassified),
              analysis::render_flow_aggregates(result.flow_comparisons)
                  .c_str());
  if (worst_limit > 0) {
    std::printf("-- worst flows (run B vs A) --\n%s",
                analysis::render_worst_flows(result.flow_comparisons.front(),
                                             worst_limit)
                    .c_str());
  }
}

/// Per-run detail for one flow id. A requested id that was never
/// classified is an error (exit 1), exactly like pointing `stats` at a
/// missing telemetry directory.
int print_flow_detail(const testbed::ExperimentResult& result,
                      long long flow_id) {
  if (static_cast<std::uint64_t>(flow_id) >= result.flow_count) {
    std::fprintf(stderr,
                 "choirctl: flow %lld not present (%zu flows classified)\n",
                 flow_id, result.flow_count);
    return 1;
  }
  const auto id = static_cast<std::size_t>(flow_id);
  std::printf("-- flow %lld --\n", flow_id);
  for (std::size_t r = 0; r < result.flow_comparisons.size(); ++r) {
    const auto& flows = result.flow_comparisons[r].flows;
    if (id >= flows.size()) continue;
    const flow::FlowComparison& fc = flows[id];
    std::printf("  run %c: %-40s %6u/%-6u pkts kappa=%.4f%s\n",
                static_cast<char>('B' + r), flow::to_string(fc.key).c_str(),
                fc.packets_a, fc.packets_b, fc.metrics.kappa,
                fc.matched() ? "" : (fc.in_a ? " [missing]" : " [extra]"));
  }
  return 0;
}

void print_group(const testbed::ExperimentResult& result) {
  const auto& g = result.group_stats;
  if (g.rounds_started == 0) return;
  std::printf(
      "-- replay group --\n"
      "  rounds %llu started, %llu completed, %llu degraded; "
      "barrier worst residual %.0f ns\n"
      "  beacons %llu, stragglers %llu, resyncs %llu, rejoins %llu, "
      "evictions %llu, ready timeouts %llu\n",
      static_cast<unsigned long long>(g.rounds_started),
      static_cast<unsigned long long>(g.rounds_completed),
      static_cast<unsigned long long>(g.rounds_degraded),
      g.barrier_worst_residual_ns,
      static_cast<unsigned long long>(g.beacons_rx),
      static_cast<unsigned long long>(g.stragglers_detected),
      static_cast<unsigned long long>(g.resyncs_sent),
      static_cast<unsigned long long>(g.rejoins),
      static_cast<unsigned long long>(g.evictions),
      static_cast<unsigned long long>(g.ready_timeouts));
  std::uint64_t ctl_sent = 0, ctl_retries = 0, ctl_timeouts = 0;
  for (const auto& m : result.group_members) {
    std::printf(
        "  node %-3u %-10s beacons %-6llu straggles %-3llu resyncs %-3llu "
        "ctl %llu/%llu/%llu sent/retry/timeout  barrier residual %.0f ns\n",
        m.id, app::member_state_name(m.state),
        static_cast<unsigned long long>(m.beacons),
        static_cast<unsigned long long>(m.straggles),
        static_cast<unsigned long long>(m.resyncs),
        static_cast<unsigned long long>(m.ctl_sent),
        static_cast<unsigned long long>(m.ctl_retries),
        static_cast<unsigned long long>(m.ctl_timeouts),
        m.barrier_residual_ns);
    ctl_sent += m.ctl_sent;
    ctl_retries += m.ctl_retries;
    ctl_timeouts += m.ctl_timeouts;
  }
  if (ctl_sent > 0) {
    std::printf("  control channel: %llu commands sent, %llu retries, "
                "%llu timeouts\n",
                static_cast<unsigned long long>(ctl_sent),
                static_cast<unsigned long long>(ctl_retries),
                static_cast<unsigned long long>(ctl_timeouts));
  }
}

void print_metrics(const testbed::ExperimentResult& result) {
  char run = 'B';
  for (const auto& c : result.comparisons) {
    std::printf(
        "run %c: U=%s O=%s I=%s L=%s kappa=%.4f (+-10ns %.2f%%, "
        "|A|=%zu |B|=%zu)\n",
        run++, analysis::format_metric(c.metrics.uniqueness).c_str(),
        analysis::format_metric(c.metrics.ordering).c_str(),
        analysis::format_metric(c.metrics.iat).c_str(),
        analysis::format_metric(c.metrics.latency).c_str(), c.metrics.kappa,
        100.0 * c.fraction_iat_within(10.0), c.size_a, c.size_b);
  }
  std::printf("mean kappa %.4f  (presence-sensitive %.4f)\n",
              result.mean.kappa,
              core::scaled_kappa(result.mean,
                                 core::KappaScaling::presence_sensitive()));
}

int cmd_list() {
  for (const auto& p : testbed::all_presets()) {
    std::printf("%-28s %3.0f Gbps x%d%s%s\n", p.name.c_str(), p.rate / 1e9,
                p.replayers, p.shared_nics ? "  shared-NIC" : "",
                p.with_noise ? "  +noise" : "");
  }
  return 0;
}

int cmd_run(const std::vector<std::string>& args, bool figures) {
  testbed::EnvironmentPreset env;
  if (args.size() < 3 || !find_preset(args[2], &env)) return usage();
  const Options opt = parse_options(args, 3);
  if (!opt.ok) return usage();
  const auto result = run_with(env, opt, false);
  std::printf("%s: %llu packets/trial, %d runs\n", env.name.c_str(),
              static_cast<unsigned long long>(result.recorded_packets),
              opt.runs);
  print_metrics(result);
  print_group(result);
  print_flows(result, /*worst_limit=*/0);
  analysis::DeltaHistogram iat = analysis::DeltaHistogram::log_ns();
  analysis::DeltaHistogram lat = analysis::DeltaHistogram::log_ns();
  for (const auto& c : result.comparisons) {
    iat.add_all(c.series.iat_delta_ns);
    lat.add_all(c.series.latency_delta_ns);
  }
  if (figures) {
    std::printf("-- IAT deltas --\n%s-- latency deltas --\n%s",
                iat.render().c_str(), lat.render().c_str());
  }
  if (!opt.csv_dir.empty()) {
    const std::string base = opt.csv_dir + "/" + env.name;
    analysis::write_histogram_csv(iat, base + "-iat.csv");
    analysis::write_histogram_csv(lat, base + "-latency.csv");
    std::vector<analysis::MetricsRow> rows;
    char run = 'B';
    for (const auto& c : result.comparisons) {
      rows.push_back({std::string("run-") + run++, c.metrics});
    }
    rows.push_back({"mean", result.mean});
    analysis::write_metrics_csv(rows, base + "-metrics.csv");
    std::printf("wrote %s-{iat,latency,metrics}.csv\n", base.c_str());
  }
  return 0;
}

void print_profile(const testbed::ExperimentResult& result) {
  if (result.profile == nullptr) return;
  std::printf("-- span profile (host time) --\n%s",
              result.profile->render_table().c_str());
}

void print_monitor(const testbed::ExperimentResult& result,
                   bool window_rows, std::size_t divergence_limit) {
  if (result.monitor == nullptr) return;
  const auto& mon = *result.monitor;
  std::printf("-- monitored streams (exact Eq. 5 vs run-0) --\n%s",
              monitor::render_stream_summary(mon).c_str());
  if (window_rows) {
    std::printf("-- windows (w=%zu packets) --\n%s",
                mon.config().window_packets,
                monitor::render_window_table(mon).c_str());
  }
  if (divergence_limit > 0 && !mon.divergence().empty()) {
    std::printf("-- top divergent packets --\n%s",
                monitor::render_top_divergence(mon, divergence_limit).c_str());
  }
}

/// `stats <dir>`: summarize artifacts a previous run wrote, instead of
/// running an experiment. Exit codes distinguish the failure shapes so
/// scripts can: 1 = the directory does not exist (a typo), 3 = it
/// exists but holds no non-empty telemetry artifact (an aborted or
/// zero-packet run) — the empty gauge/histogram sections still print.
int cmd_stats_dir(const std::string& dir) {
  const analysis::TelemetryDirSummary summary =
      analysis::summarize_telemetry_dir(dir);
  if (summary.status == analysis::TelemetryDirStatus::kMissingDir) {
    std::fprintf(stderr, "choirctl: %s", summary.text.c_str());
    return 1;
  }
  std::fputs(summary.text.c_str(), stdout);
  return summary.status == analysis::TelemetryDirStatus::kOk ? 0 : 3;
}

int cmd_stats(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 3) return usage();
  if (!find_preset(args[2], &env)) {
    // Not a preset: treat the argument as a telemetry artifact directory
    // (error out clearly when it is neither).
    if (!args[2].empty() && args[2][0] == '-') return usage();
    return cmd_stats_dir(args[2]);
  }
  Options opt = parse_options(args, 3);
  if (!opt.ok) return usage();
  opt.telemetry = true;
  const auto result = run_with(env, opt, false);
  std::printf("%s: %llu packets/trial, %d runs, mean kappa %.4f\n",
              env.name.c_str(),
              static_cast<unsigned long long>(result.recorded_packets),
              opt.runs, result.mean.kappa);

  const auto& registry = *result.telemetry_registry;
  const auto snapshot = registry.snapshot(0);
  std::printf("-- counters --\n");
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("flow.", 0) == 0) continue;  // own section below
    std::printf("  %-42s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  bool any_flow_counter = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind("flow.", 0) != 0) continue;
    if (!any_flow_counter) {
      std::printf("-- flow counters (flow.<shard>.*) --\n");
      any_flow_counter = true;
    }
    std::printf("  %-42s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::printf("-- gauges --\n");
  for (const auto& [name, value] : snapshot.gauges) {
    std::printf("  %-42s %lld\n", name.c_str(),
                static_cast<long long>(value));
  }
  std::printf("-- latency histograms (ns) --\n");
  std::printf("  %-42s %10s %10s %10s %10s %10s\n", "name", "count", "p50",
              "p90", "p99", "max");
  for (const auto& [name, histogram] : registry.histograms()) {
    const auto s = histogram.summary();
    std::printf("  %-42s %10llu %10lld %10lld %10lld %10lld\n", name.c_str(),
                static_cast<unsigned long long>(s.count),
                static_cast<long long>(s.p50), static_cast<long long>(s.p90),
                static_cast<long long>(s.p99), static_cast<long long>(s.max));
  }
  const auto& tracer = *result.telemetry_trace;
  std::printf("-- trace --\n  %zu events recorded, %llu dropped\n",
              tracer.events().size(),
              static_cast<unsigned long long>(tracer.dropped()));
  print_group(result);
  print_flows(result, /*worst_limit=*/0);
  if (opt.flow_id >= 0 && print_flow_detail(result, opt.flow_id) != 0) {
    return 1;
  }
  print_monitor(result, opt.windows, 0);
  print_profile(result);
  if (!opt.telemetry_dir.empty()) {
    std::printf("wrote %s/{counters.jsonl,histograms.csv,trace.json}\n",
                opt.telemetry_dir.c_str());
  }
  return 0;
}

int cmd_monitor(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 3 || !find_preset(args[2], &env)) return usage();
  Options opt = parse_options(args, 3);
  if (!opt.ok) return usage();
  opt.monitor = true;
  const auto result = run_with(env, opt, false);
  std::printf("%s: %llu packets/trial, %d runs, mean kappa %.4f\n",
              env.name.c_str(),
              static_cast<unsigned long long>(result.recorded_packets),
              opt.runs, result.mean.kappa);
  print_monitor(result, /*window_rows=*/true, /*divergence_limit=*/10);
  print_profile(result);
  if (!opt.monitor_dir.empty()) {
    std::printf("wrote %s/{divergence.jsonl,windows.csv}\n",
                opt.monitor_dir.c_str());
  }
  return 0;
}

int cmd_flows(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 3 || !find_preset(args[2], &env)) return usage();
  Options opt = parse_options(args, 3);
  if (!opt.ok) return usage();
  opt.per_flow = true;
  const auto result = run_with(env, opt, false);
  std::printf("%s: %llu packets/trial, %d runs, mean kappa %.4f\n",
              env.name.c_str(),
              static_cast<unsigned long long>(result.recorded_packets),
              opt.runs, result.mean.kappa);
  print_group(result);
  print_flows(result, /*worst_limit=*/10);
  if (opt.flow_id >= 0 && print_flow_detail(result, opt.flow_id) != 0) {
    return 1;
  }
  if (result.monitor != nullptr) {
    const std::string flow_summary =
        monitor::render_flow_summary(*result.monitor);
    if (!flow_summary.empty()) {
      std::printf("-- monitored streams (per-flow) --\n%s",
                  flow_summary.c_str());
    }
  }
  return 0;
}

/// `postmortem <env>`: run the replay-group protocol with per-node
/// flight recording, merge the rings into one causal timeline, and walk
/// every bad outcome (eviction, resync, kappa-gate failure, clock
/// anomaly) back to its root cause. `--chaos` injects one of the group
/// failure presets aimed at run 1's replay, so a known-bad run can be
/// produced and diagnosed in one command. Exits 1 only when
/// `--kappa-gate` is set and a round fails it.
int cmd_postmortem(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 3 || !find_preset(args[2], &env)) return usage();
  Options opt = parse_options(args, 3);
  if (!opt.ok) return usage();

  testbed::ExperimentConfig cfg;
  cfg.env = env;
  cfg.env.replayers = opt.nodes > 0 ? opt.nodes : 3;
  // Pin the replayer sync servo and the group health cadence the way
  // the group chaos tests do: sub-millisecond beacons make straggler
  // detection observable inside a short trial, and a fixed sigma keeps
  // the arm margin at its 5 ms floor so the chaos windows land on the
  // replay stretch they target at any packet count.
  cfg.env.replayer_sync_fraction_of_run = 0.0;
  cfg.env.replayer_sync_sigma_ns = 25.0;
  cfg.packets = opt.packets;
  cfg.runs = opt.runs;
  cfg.seed = opt.seed;
  cfg.collect_series = false;
  cfg.eval_jobs = opt.jobs;
  cfg.group.enabled = true;
  cfg.group.config.beacon_interval = microseconds(100);
  cfg.group.config.check_interval = microseconds(250);
  cfg.group.config.straggle_threshold = microseconds(400);
  cfg.group.config.resync_slack = microseconds(50);
  cfg.group.config.resync_retry = microseconds(500);
  cfg.obs.enabled = true;
  cfg.obs.dir = opt.obs_dir;
  cfg.obs.sample_every = opt.trace_sample;

  const testbed::ReplaySchedule sched = testbed::replay_schedule(cfg);
  const int target = opt.chaos_node;
  if (opt.chaos == "stall") {
    // Mid-replay NIC stall over two thirds of run 1: long enough that
    // the resync machinery (not the paced retry loop) must recover it.
    cfg.env.faults = fault::group_node_stall_plan(
        target, sched.wall_start(1) + sched.trial_duration / 4,
        2 * sched.trial_duration / 3);
  } else if (opt.chaos == "ctl-loss") {
    // Lossy command path for the whole schedule; the sequenced channel
    // needs its retry envelope widened to keep command semantics.
    cfg.env.control_retry.max_attempts = 6;
    cfg.env.control_retry.initial_backoff = microseconds(100);
    cfg.env.control_retry.multiplier = 2.0;
    cfg.env.control_retry.timeout = milliseconds(4);
    cfg.env.faults = fault::group_control_loss_plan(
        target, 0, sched.round_end(cfg.runs - 1) + milliseconds(10), 0.5);
  } else if (opt.chaos == "clock") {
    cfg.env.faults = fault::group_clock_degrade_plan(
        target, 0, sched.round_end(cfg.runs - 1) + milliseconds(10), 1000.0);
  } else if (!opt.chaos.empty()) {
    std::fprintf(stderr,
                 "choirctl: unknown chaos preset '%s' "
                 "(expected stall, ctl-loss, or clock)\n",
                 opt.chaos.c_str());
    return 2;
  }

  const auto result = run_experiment(cfg);
  std::printf("%s: %llu packets/trial, %d rounds, mean kappa %.4f\n",
              env.name.c_str(),
              static_cast<unsigned long long>(result.recorded_packets),
              opt.runs, result.mean.kappa);
  print_group(result);

  const obs::GroupTimeline timeline = obs::merge_timeline(*result.flight_log);
  obs::PostmortemOptions popt;
  popt.kappa_gate = opt.kappa_gate;
  const obs::PostmortemReport report =
      obs::analyze_timeline(*result.flight_log, timeline, popt);
  std::fputs(
      analysis::render_postmortem(*result.flight_log, timeline, report)
          .c_str(),
      stdout);
  if (!opt.obs_dir.empty()) {
    analysis::write_postmortem_json(*result.flight_log, timeline, report,
                                    opt.obs_dir + "/postmortem.json");
    std::printf("wrote %s/{group_trace.json,events.jsonl,postmortem.json}\n",
                opt.obs_dir.c_str());
  }
  return report.kappa_gate_failed ? 1 : 0;
}

/// `top <env>`: run with the series sampler on and render a live,
/// whole-registry terminal view — one sparkline row per metric series —
/// refreshed every few samples, with the full table printed at exit.
/// Frames only render on a tty; piped output gets just the final table,
/// so the command stays scriptable.
int cmd_top(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 3 || !find_preset(args[2], &env)) return usage();
  Options opt = parse_options(args, 3);
  if (!opt.ok) return usage();
  opt.telemetry = true;
  opt.series_auto = true;
  testbed::ExperimentConfig cfg = make_config(env, opt, false);
  const bool live = isatty(fileno(stdout)) != 0;
  if (live) {
    cfg.telemetry.series_observer = [](Ns t,
                                       const telemetry::SeriesSampler& s) {
      if (s.samples_taken() % 4 != 0) return;
      std::printf("\033[2J\033[H-- choirctl top @ +%.3f ms "
                  "(sample %llu, %zu series) --\n%s",
                  static_cast<double>(t) / 1e6,
                  static_cast<unsigned long long>(s.samples_taken()),
                  s.entries().size(),
                  analysis::render_series_top(s, 24).c_str());
      std::fflush(stdout);
    };
  }
  const auto result = run_experiment(cfg);
  const telemetry::SeriesSampler& series = *result.telemetry_series;
  std::printf("%s: %llu packets/trial, %d runs, mean kappa %.4f\n",
              env.name.c_str(),
              static_cast<unsigned long long>(result.recorded_packets),
              opt.runs, result.mean.kappa);
  std::printf("-- series (interval %.3f ms, %llu samples, %zu series) --\n%s",
              static_cast<double>(series.interval()) / 1e6,
              static_cast<unsigned long long>(series.samples_taken()),
              series.entries().size(),
              analysis::render_series_top(series).c_str());
  return 0;
}

/// `soak <env>`: N independent rounds at seed, seed+1, ... — the CLI
/// face of the drift detector. Each round runs with the monitor and
/// telemetry on; the per-round mean κ, worst running window κ, worst
/// windowed flow κ, and every counter total become series, and the
/// drift report flags monotone κ decay (Mann-Kendall) and counter-rate
/// outliers. `--drift-gate` turns a drifting verdict into exit 1.
int cmd_soak(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 3 || !find_preset(args[2], &env)) return usage();
  Options opt = parse_options(args, 3);
  if (!opt.ok || opt.rounds < 1) return usage();
  opt.telemetry = true;
  opt.monitor = true;

  std::vector<double> mean_kappa;
  std::vector<double> worst_window;
  std::vector<double> flow_worst;
  std::map<std::string, std::vector<double>> counter_rounds;
  for (int r = 0; r < opt.rounds; ++r) {
    Options round = opt;
    round.seed = opt.seed + static_cast<std::uint64_t>(r);
    const auto result = run_with(env, round, false);
    mean_kappa.push_back(result.mean.kappa);
    double worst = 1.0;
    double fworst = 1.0;
    bool any_flow = false;
    std::size_t windows = 0;
    if (result.monitor != nullptr) {
      for (const auto& w : result.monitor->windows()) {
        ++windows;
        worst = std::min(worst, w.kappa_running);
        if (w.has_flows) {
          any_flow = true;
          fworst = std::min(fworst, w.flow_aggregate.worst);
        }
      }
    }
    worst_window.push_back(worst);
    if (any_flow) flow_worst.push_back(fworst);
    const auto snapshot = result.telemetry_registry->snapshot(0);
    for (const auto& [name, value] : snapshot.counters) {
      counter_rounds[name].push_back(static_cast<double>(value));
    }
    std::printf("round %2d: seed %-6llu mean kappa %.4f  "
                "worst window kappa %.4f  (%zu windows)\n",
                r, static_cast<unsigned long long>(round.seed),
                result.mean.kappa, worst, windows);
  }

  monitor::DriftReport report;
  report.findings.push_back(
      monitor::detect_monotone_drift("soak.mean_kappa", mean_kappa));
  report.findings.push_back(monitor::detect_monotone_drift(
      "soak.worst_window_kappa", worst_window));
  if (!flow_worst.empty()) {
    report.findings.push_back(
        monitor::detect_monotone_drift("soak.flow_kappa_worst", flow_worst));
  }
  // Per-round counter totals are per-round rates already (each round has
  // its own registry), so they feed the outlier test directly.
  for (const auto& [name, values] : counter_rounds) {
    report.findings.push_back(
        monitor::detect_rate_anomaly("rate." + name, values));
  }
  std::fputs(monitor::render_drift(report).c_str(), stdout);
  return opt.drift_gate && report.drifting() ? 1 : 0;
}

/// `export <env> <dir>`: one-stop artifact export — telemetry plus the
/// series plane (series.jsonl and the Prometheus text exposition). The
/// bytes written are deterministic in (seed, scale) at any --jobs.
int cmd_export(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 4 || !find_preset(args[2], &env)) return usage();
  Options opt = parse_options(args, 4);
  if (!opt.ok) return usage();
  opt.telemetry = true;
  opt.telemetry_dir = args[3];
  opt.series_auto = true;
  const auto result = run_with(env, opt, false);
  const telemetry::SeriesSampler& series = *result.telemetry_series;
  std::printf("%s: %llu packets/trial, %d runs, mean kappa %.4f\n",
              env.name.c_str(),
              static_cast<unsigned long long>(result.recorded_packets),
              opt.runs, result.mean.kappa);
  std::printf("%zu series, %llu samples at %.3f ms\n",
              series.entries().size(),
              static_cast<unsigned long long>(series.samples_taken()),
              static_cast<double>(series.interval()) / 1e6);
  std::printf("wrote %s/{counters.jsonl,histograms.csv,trace.json,"
              "series.jsonl,metrics.prom}\n",
              opt.telemetry_dir.c_str());
  return 0;
}

int cmd_save(const std::vector<std::string>& args) {
  testbed::EnvironmentPreset env;
  if (args.size() < 4 || !find_preset(args[2], &env)) return usage();
  const std::string dir = args[3];
  const Options opt = parse_options(args, 4);
  if (!opt.ok) return usage();
  const auto result = run_with(env, opt, true);
  for (std::size_t r = 0; r < result.captures.size(); ++r) {
    const std::string base = dir + "/" + env.name + "-run" +
                             std::to_string(r);
    trace::write_trace(result.captures[r], base + ".trc");
    trace::write_pcap(result.captures[r], base + ".pcap");
    std::printf("wrote %s.{trc,pcap} (%zu packets)\n", base.c_str(),
                result.captures[r].size());
  }
  print_metrics(result);
  print_group(result);
  return 0;
}

bool is_pcap_path(const std::string& path) {
  return path.size() > 5 && path.compare(path.size() - 5, 5, ".pcap") == 0;
}

trace::Capture load_capture(const std::string& path) {
  if (is_pcap_path(path)) return trace::read_pcap(path);
  // Native traces go through the mapped loader (falls back to a stream
  // read transparently where mmap is unavailable).
  return trace::MappedCapture(path).materialize();
}

/// Build a comparison trial from a capture file. Native traces decode
/// ids and timestamps straight from the mapped bytes — the 48-byte
/// headers the metrics never look at are never copied.
core::Trial load_trial(const std::string& path) {
  if (is_pcap_path(path)) return testbed::rebased_trial(trace::read_pcap(path));
  return testbed::rebased_trial(trace::MappedCapture(path));
}

int cmd_compare(const std::vector<std::string>& args) {
  if (args.size() < 4) return usage();
  const auto a = load_trial(args[2]);
  const auto b = load_trial(args[3]);
  core::ComparisonOptions copt;
  copt.collect_series = true;
  const auto cmp = core::compare_trials(a, b, copt);
  std::printf(
      "|A|=%zu |B|=%zu common=%zu moved=%zu\n"
      "U=%s O=%s I=%s L=%s kappa=%.4f (+-10ns %.2f%%)\n",
      cmp.size_a, cmp.size_b, cmp.common, cmp.moved,
      analysis::format_metric(cmp.metrics.uniqueness).c_str(),
      analysis::format_metric(cmp.metrics.ordering).c_str(),
      analysis::format_metric(cmp.metrics.iat).c_str(),
      analysis::format_metric(cmp.metrics.latency).c_str(),
      cmp.metrics.kappa, 100.0 * cmp.fraction_iat_within(10.0));
  return 0;
}

/// `partition <trace> <n> <dir>`: the offline half of the group story —
/// split a recorded trace into the per-node sub-traces a replay group
/// would load, one flow-sharded `.trc` per node, timelines rebased so
/// every node replays relative to the same epoch.
int cmd_partition(const std::vector<std::string>& args) {
  if (args.size() < 5) return usage();
  const int nodes = std::atoi(args[3].c_str());
  if (nodes < 1 || nodes > 64) {
    std::fprintf(stderr, "choirctl: node count must be in 1..64\n");
    return 1;
  }
  const trace::Capture cap = load_capture(args[2]);
  if (cap.size() == 0) {
    std::fprintf(stderr, "choirctl: '%s' holds no packets\n", args[2].c_str());
    return 1;
  }
  const trace::PartitionResult part =
      trace::partition_capture(cap, static_cast<std::size_t>(nodes));
  const std::string stem = std::filesystem::path(args[2]).stem().string();
  std::filesystem::create_directories(args[4]);
  for (std::size_t n = 0; n < part.nodes.size(); ++n) {
    const std::string path =
        args[4] + "/" + stem + ".node" + std::to_string(n) + ".trc";
    trace::write_trace(part.nodes[n], path);
    std::printf("wrote %s (%zu packets)\n", path.c_str(),
                part.nodes[n].size());
  }
  std::printf("%zu packets -> %d nodes, epoch %lld ns, %llu unclassified\n",
              cap.size(), nodes, static_cast<long long>(part.epoch),
              static_cast<unsigned long long>(part.unclassified));
  return 0;
}

/// `bench` — the machine-readable benchmark harness front end.
///
///   bench                                  list suites
///   bench <suite> [--out DIR]              run, write BENCH_*.json
///                 [--compare BASELINE]     ... then gate against BASELINE
///                 [--tolerance PCT]        sim-metric band override
///   bench --compare A B [--tolerance PCT]  diff two artifact directories
///
/// Exits 0 when every compared metric is inside its band, 1 when any
/// simulated metric regressed (host.* metrics are report-only).
int cmd_bench(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    std::printf("suites:\n");
    for (const auto& suite : testbed::bench_suites()) {
      std::printf("  %-14s %s\n", suite.name.c_str(),
                  suite.description.c_str());
    }
    return 0;
  }
  std::string suite;
  std::string out_dir = "bench_out";
  std::vector<std::string> compare_dirs;
  double tolerance_pct = -1.0;
  int jobs = 0;
  int reps = 1;
  std::string stats_baseline;
  std::string stats_out;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--out" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else if (arg == "--jobs" && i + 1 < args.size()) {
      jobs = std::atoi(args[++i].c_str());
    } else if (arg == "--reps" && i + 1 < args.size()) {
      reps = std::atoi(args[++i].c_str());
    } else if (arg == "--stats-baseline" && i + 1 < args.size()) {
      stats_baseline = args[++i];
    } else if (arg == "--stats-out" && i + 1 < args.size()) {
      stats_out = args[++i];
    } else if (arg == "--compare" && i + 1 < args.size()) {
      compare_dirs.push_back(args[++i]);
      // The pure-diff form takes the current dir as a second operand.
      if (suite.empty() && i + 1 < args.size() && args[i + 1][0] != '-') {
        compare_dirs.push_back(args[++i]);
      }
    } else if (arg == "--tolerance" && i + 1 < args.size()) {
      tolerance_pct = std::strtod(args[++i].c_str(), nullptr);
    } else if (!arg.empty() && arg[0] != '-' && suite.empty()) {
      suite = arg;
    } else {
      return usage();
    }
  }
  if (suite.empty() && compare_dirs.size() != 2) return usage();
  if (!suite.empty() && compare_dirs.size() > 1) return usage();

  int exit_code = 0;
  if (!suite.empty()) {
    // Multi-repetition mode (PASTRAMI-style, docs/BENCHMARKS.md): run
    // the whole suite `reps` times, sample the host throughput of each
    // repetition, and judge the sampled distribution — spread first,
    // then the median against the baseline medians. The BENCH_*.json
    // artifacts are deterministic, so re-running just rewrites the same
    // bytes; only the host-side samples differ per repetition.
    const int repetitions = std::max(1, reps);
    std::vector<double> pps_per_core;
    std::vector<std::string> written;
    for (int r = 0; r < repetitions; ++r) {
      testbed::SuiteTiming timing;
      written = testbed::run_bench_suite(suite, out_dir, jobs, &timing);
      pps_per_core.push_back(timing.packets_per_sec_per_core());
      // Host wall-clock is nondeterministic, so the timing line stays
      // off unless explicitly requested — keeps default output (and
      // anything scraping it) identical across machines and job counts.
      const char* host_time = std::getenv("CHOIR_BENCH_HOST_TIME");
      if (host_time != nullptr && std::strcmp(host_time, "1") == 0) {
        std::printf(
            "suite %s: wall %.0f ms, tasks %.0f ms, speedup %.2fx at %d "
            "jobs\n",
            suite.c_str(), timing.wall_ms, timing.tasks_ms, timing.speedup(),
            timing.jobs);
      }
    }
    for (const auto& name : written) {
      std::printf("wrote %s/%s\n", out_dir.c_str(), name.c_str());
    }
    if (repetitions > 1 || !stats_baseline.empty() || !stats_out.empty()) {
      analysis::StatSample sample;
      sample.path = "host." + suite + ".pps_per_core";
      sample.values = pps_per_core;
      std::vector<std::pair<std::string, double>> baseline;
      if (!stats_baseline.empty()) {
        std::ifstream in(stats_baseline, std::ios::binary);
        if (!in.good()) {
          std::fprintf(stderr, "choirctl: cannot open stats baseline '%s'\n",
                       stats_baseline.c_str());
          return 1;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        baseline = analysis::parse_stat_baseline(buf.str());
      }
      const analysis::StatResult verdicts =
          analysis::statistical_verdicts({sample}, baseline);
      std::fputs(analysis::render_stat_verdicts(verdicts).c_str(), stdout);
      if (!stats_out.empty()) {
        std::ofstream out(stats_out, std::ios::binary);
        out << analysis::stat_baseline_to_json(verdicts);
        std::printf("wrote %s\n", stats_out.c_str());
      }
      if (!verdicts.ok()) exit_code = 1;
    }
    if (compare_dirs.empty()) return exit_code;
    compare_dirs.push_back(out_dir);  // baseline, current
  }
  std::string text;
  const int regressions = testbed::compare_bench_dirs(
      compare_dirs[0], compare_dirs[1], tolerance_pct, &text);
  std::fputs(text.c_str(), stdout);
  return regressions > 0 ? 1 : exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  if (args.size() < 2) return usage();
  try {
    const std::string& command = args[1];
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args, false);
    if (command == "figure") return cmd_run(args, true);
    if (command == "save") return cmd_save(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "monitor") return cmd_monitor(args);
    if (command == "flows") return cmd_flows(args);
    if (command == "postmortem") return cmd_postmortem(args);
    if (command == "top") return cmd_top(args);
    if (command == "soak") return cmd_soak(args);
    if (command == "export") return cmd_export(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "partition") return cmd_partition(args);
    if (command == "bench") return cmd_bench(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "choirctl: %s\n", error.what());
    return 1;
  }
  return usage();
}
