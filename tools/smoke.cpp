// smoke — minimal experiment driver used during development and
// calibration: runs one preset at a given scale/seed and prints the
// per-run metrics plus the runner's drop diagnostics.
//
//   smoke [env-name] [packets] [seed]
#include <cstdio>
#include "testbed/experiment.hpp"
#include "testbed/presets.hpp"
#include "analysis/stats.hpp"

using namespace choir;

int main(int argc, char** argv) {
  testbed::ExperimentConfig cfg;
  cfg.env = testbed::local_single();
  if (argc > 1) {
    for (const auto& p : testbed::all_presets())
      if (p.name == argv[1]) cfg.env = p;
  }
  cfg.packets = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 30000;
  cfg.runs = 5;
  cfg.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  auto res = testbed::run_experiment(cfg);
  std::printf("env=%s packets=%llu recorded=%llu dur=%.3fms\n",
              cfg.env.name.c_str(), (unsigned long long)cfg.packets,
              (unsigned long long)res.recorded_packets,
              res.trial_duration / 1e6);
  for (auto& ms : res.middlebox_stats)
    std::printf("mb: fwd=%llu rec=%llu ctl=%llu replays=%llu rbursts=%llu rpkts=%llu\n",
                (unsigned long long)ms.forwarded, (unsigned long long)ms.recorded,
                (unsigned long long)ms.control_frames, (unsigned long long)ms.replays_started,
                (unsigned long long)ms.replayed_bursts, (unsigned long long)ms.replayed_packets);
  std::printf("capture sizes:");
  for (auto s : res.capture_sizes) std::printf(" %zu", s);
  std::printf("\nrec_rx_drops=%llu imissed=%llu sw_drops=%llu replay_tx_drops=%llu\n",
              (unsigned long long)res.recorder_rx_drops,
              (unsigned long long)res.recorder_imissed,
              (unsigned long long)res.switch_queue_drops,
              (unsigned long long)res.replay_tx_drops);
  int i = 0;
  for (auto& c : res.comparisons) {
    std::printf("run %c: U=%.3e O=%.4f I=%.4f L=%.3e k=%.4f within10=%.2f%% common=%zu moved=%zu\n",
                'B' + i++, c.metrics.uniqueness, c.metrics.ordering,
                c.metrics.iat, c.metrics.latency, c.metrics.kappa,
                100 * c.fraction_iat_within(10.0), c.common, c.moved);
  }
  std::printf("MEAN: U=%.3e O=%.4f I=%.4f L=%.3e k=%.4f\n",
              res.mean.uniqueness, res.mean.ordering, res.mean.iat,
              res.mean.latency, res.mean.kappa);
  return 0;
}
